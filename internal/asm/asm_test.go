package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustOne(t *testing.T, src string) isa.Inst {
	t.Helper()
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatalf("Assemble(%q): %v", src, err)
	}
	if len(p.Insts) != 1 {
		t.Fatalf("Assemble(%q): %d instructions, want 1", src, len(p.Insts))
	}
	return p.Insts[0]
}

func TestThreeWideInstruction(t *testing.T) {
	in := mustOne(t, "add i1, i2, i3 | ld i4, [i5+2] | fadd f1, f2, f3")
	if in.Width() != 3 {
		t.Fatalf("width = %d, want 3", in.Width())
	}
	if in.IOp.Code != isa.ADD || in.IOp.Dst != isa.Int(1) {
		t.Errorf("IOp = %v", in.IOp)
	}
	if in.MOp.Code != isa.LD || in.MOp.Src1 != isa.Int(5) || in.MOp.Imm != 2 {
		t.Errorf("MOp = %v", in.MOp)
	}
	if in.FOp.Code != isa.FADD || in.FOp.Src2 != isa.FP(3) {
		t.Errorf("FOp = %v", in.FOp)
	}
}

func TestIntOpFallsBackToMemoryUnit(t *testing.T) {
	in := mustOne(t, "add i1, i2, i3 | sub i4, i5, i6")
	if in.IOp == nil || in.MOp == nil {
		t.Fatalf("expected both integer slots used: %v", in.String())
	}
	if in.MOp.Code != isa.SUB {
		t.Errorf("MOp = %v, want sub", in.MOp)
	}
}

func TestThreeIntOpsRejected(t *testing.T) {
	_, err := Assemble("t", "add i1,i1,i1 | add i2,i2,i2 | add i3,i3,i3")
	if err == nil {
		t.Fatal("expected error for three integer ops")
	}
}

func TestTwoMemOpsRejected(t *testing.T) {
	_, err := Assemble("t", "ld i1,[i2] | st [i3], i4")
	if err == nil {
		t.Fatal("expected error for two memory ops")
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p, err := Assemble("t", `
top:
    movi i1, #0
loop:
    add i1, i1, #1
    lt  gcc1, i1, i2
    brt gcc1, loop
    br  top
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["top"] != 0 || p.Labels["loop"] != 1 {
		t.Fatalf("labels = %v", p.Labels)
	}
	brt := p.Insts[3].IOp
	if brt.Code != isa.BRT || brt.Imm != 1 {
		t.Errorf("brt = %+v, want target 1", brt)
	}
	br := p.Insts[4].IOp
	if br.Code != isa.BR || br.Imm != 0 {
		t.Errorf("br = %+v, want target 0", br)
	}
}

func TestUndefinedLabel(t *testing.T) {
	_, err := Assemble("t", "br nowhere")
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("err = %v, want undefined label", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	_, err := Assemble("t", "x: nop\nx: nop")
	if err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("err = %v, want duplicate label", err)
	}
}

func TestEqu(t *testing.T) {
	p, err := Assemble("t", `
.equ BASE 0x100
.equ COUNT 8
    movi i1, #BASE
    add i2, i1, #COUNT
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].IOp.Imm != 0x100 {
		t.Errorf("movi imm = %d, want 256", p.Insts[0].IOp.Imm)
	}
	if p.Insts[1].IOp.Imm != 8 {
		t.Errorf("add imm = %d, want 8", p.Insts[1].IOp.Imm)
	}
}

func TestUndefinedConstant(t *testing.T) {
	_, err := Assemble("t", "movi i1, #NOPE")
	if err == nil || !strings.Contains(err.Error(), "undefined constant") {
		t.Fatalf("err = %v, want undefined constant", err)
	}
}

func TestSyncSuffix(t *testing.T) {
	in := mustOne(t, "ldsy.fe i1, [i2]")
	if in.MOp.Pre != isa.SyncFull || in.MOp.Post != isa.SyncEmpty {
		t.Errorf("sync conds = %v/%v, want f/e", in.MOp.Pre, in.MOp.Post)
	}
	in = mustOne(t, "stsy.ef [i1], i2")
	if in.MOp.Pre != isa.SyncEmpty || in.MOp.Post != isa.SyncFull {
		t.Errorf("sync conds = %v/%v, want e/f", in.MOp.Pre, in.MOp.Post)
	}
}

func TestCrossClusterDestination(t *testing.T) {
	in := mustOne(t, "add @1.i5, i2, i3")
	if in.IOp.Dst.Cluster != 1 || in.IOp.Dst.Index != 5 {
		t.Errorf("dst = %v, want @1.i5", in.IOp.Dst)
	}
}

func TestSpecialRegisters(t *testing.T) {
	in := mustOne(t, "mov i1, net")
	if in.IOp.Src1 != isa.Spec(isa.SpecNet) {
		t.Errorf("src = %v, want net", in.IOp.Src1)
	}
	in = mustOne(t, "mov i1, evq")
	if in.IOp.Src1 != isa.Spec(isa.SpecEvq) {
		t.Errorf("src = %v, want evq", in.IOp.Src1)
	}
	in = mustOne(t, "mov i1, node")
	if in.IOp.Src1 != isa.Spec(isa.SpecNode) {
		t.Errorf("src = %v, want node", in.IOp.Src1)
	}
}

func TestMovImmediateBecomesMOVI(t *testing.T) {
	in := mustOne(t, "mov i1, #42")
	if in.IOp.Code != isa.MOVI || in.IOp.Imm != 42 {
		t.Errorf("op = %v, want movi #42", in.IOp)
	}
}

func TestSend(t *testing.T) {
	in := mustOne(t, "send i1, i2, i8, #3")
	op := in.MOp
	if op.Code != isa.SEND || op.Src1 != isa.Int(1) || op.Src2 != isa.Int(2) ||
		op.Dst != isa.Int(8) || op.Imm != 3 {
		t.Errorf("send = %+v", op)
	}
	if op.Pri != 0 {
		t.Errorf("send pri = %d, want 0", op.Pri)
	}
	in = mustOne(t, "sendn i1, i2, i8, #2")
	if in.MOp.Pri != 1 {
		t.Errorf("sendn pri = %d, want 1", in.MOp.Pri)
	}
}

func TestStoreOperandOrder(t *testing.T) {
	in := mustOne(t, "st [i5-3], i6")
	op := in.MOp
	if op.Src1 != isa.Int(5) || op.Imm != -3 || op.Src2 != isa.Int(6) {
		t.Errorf("st = %+v", op)
	}
}

func TestGCCRegisters(t *testing.T) {
	in := mustOne(t, "eq gcc1, i1, i2")
	if in.IOp.Dst != isa.GCC(1) {
		t.Errorf("dst = %v, want gcc1", in.IOp.Dst)
	}
	in = mustOne(t, "empty gcc3")
	if in.IOp.Code != isa.EMPTY || in.IOp.Dst != isa.GCC(3) {
		t.Errorf("empty = %v", in.IOp)
	}
}

func TestBadRegister(t *testing.T) {
	for _, src := range []string{"add i16, i1, i2", "add g1, i1, i2", "mov f99, f1", "add gcc9, i1, i2"} {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want register error", src)
		}
	}
}

func TestBadOperandCount(t *testing.T) {
	for _, src := range []string{"add i1, i2", "ld i1", "send i1, i2, i3", "halt i1"} {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want operand error", src)
		}
	}
}

func TestComments(t *testing.T) {
	p, err := Assemble("t", `
; full-line comment
    nop ; trailing
    nop // c++ style
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 2 {
		t.Fatalf("got %d instructions, want 2", len(p.Insts))
	}
}

func TestDisassemblyRoundTrip(t *testing.T) {
	src := `
start:
    movi i1, #7 | ld i2, [i3+1] | fadd f1, f2, f3
    eq gcc1, i1, i2
    brt gcc1, start
    st [i2], i1
    halt
`
	p1, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble("t2", p1.String())
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, p1.String())
	}
	if len(p1.Insts) != len(p2.Insts) {
		t.Fatalf("lengths differ: %d vs %d", len(p1.Insts), len(p2.Insts))
	}
	for i := range p1.Insts {
		if p1.Insts[i].String() != p2.Insts[i].String() {
			t.Errorf("inst %d: %q vs %q", i, p1.Insts[i].String(), p2.Insts[i].String())
		}
	}
}

func TestSetptrAndLea(t *testing.T) {
	in := mustOne(t, "setptr i1, i2, #0x93")
	if in.MOp.Code != isa.SETPTR || in.MOp.Imm != 0x93 {
		t.Errorf("setptr = %v", in.MOp)
	}
	in = mustOne(t, "lea i1, i2, #4")
	if in.MOp.Code != isa.LEA || !in.MOp.HasImm || in.MOp.Imm != 4 {
		t.Errorf("lea = %v", in.MOp)
	}
	in = mustOne(t, "lea i1, i2, i3")
	if in.MOp.HasImm || in.MOp.Src2 != isa.Int(3) {
		t.Errorf("lea reg form = %v", in.MOp)
	}
}

func TestDepthMetric(t *testing.T) {
	p, err := Assemble("t", "nop\nnop\nnop")
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", p.Depth())
	}
}

func TestEquInMemoryOffset(t *testing.T) {
	p, err := Assemble("t", `
.equ OFF 7
    ld i1, [i2+OFF]
    st [i2-OFF], i1
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].MOp.Imm != 7 {
		t.Errorf("load offset = %d, want 7", p.Insts[0].MOp.Imm)
	}
	if p.Insts[1].MOp.Imm != -7 {
		t.Errorf("store offset = %d, want -7", p.Insts[1].MOp.Imm)
	}
}

func TestNegativeAndHexImmediates(t *testing.T) {
	p, err := Assemble("t", "movi i1, #-42\nmovi i2, #0x1F\nmovi i3, #0xFFFFFFFFFFFFFFFF")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].IOp.Imm != -42 {
		t.Errorf("imm = %d", p.Insts[0].IOp.Imm)
	}
	if p.Insts[1].IOp.Imm != 31 {
		t.Errorf("hex imm = %d", p.Insts[1].IOp.Imm)
	}
	if uint64(p.Insts[2].IOp.Imm) != ^uint64(0) {
		t.Errorf("64-bit imm = %#x", uint64(p.Insts[2].IOp.Imm))
	}
}

func TestBadSyncSuffixRejected(t *testing.T) {
	for _, src := range []string{"ldsy.x i1, [i2]", "ldsy.fef i1, [i2]", "ldsy.zf i1, [i2]"} {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestMultipleLabelsSameInstruction(t *testing.T) {
	p, err := Assemble("t", "a: b: nop\nbr a\nbr b")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 {
		t.Errorf("labels = %v", p.Labels)
	}
}

func TestBranchToNumericTarget(t *testing.T) {
	p, err := Assemble("t", "nop\nbr #0")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[1].IOp.Imm != 0 {
		t.Errorf("numeric target = %d", p.Insts[1].IOp.Imm)
	}
}

func TestMustAssemblePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("t", "bogus i1")
}
