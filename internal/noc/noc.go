// Package noc models the M-Machine's interconnection network: a
// bidirectional 3-D mesh with dimension-order routing and two message
// priorities — priority 0 for user requests and priority 1 for system-level
// replies, "thus avoiding deadlock" (Sections 2 and 4.1).
//
// The model is message-granular store-and-forward: each message advances
// one hop per cycle per free link, with separate virtual channels per
// priority so replies never wait behind requests. The real router is a
// wormhole design; the store-and-forward abstraction preserves the latency
// shape (per-hop cost plus injection/delivery overhead, calibrated to the
// paper's 5-cycle neighbour delivery) and the priority separation, which is
// what the paper's experiments exercise.
package noc

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/isa"
)

// NumPriorities is the number of network priorities (requests and replies).
const NumPriorities = 2

// NoEvent is the NextEvent sentinel meaning "this component will never act
// again without external input" (see DESIGN.md, "The NextEvent contract").
const NoEvent = int64(math.MaxInt64)

// Coord is a node position in the 3-D mesh.
type Coord struct{ X, Y, Z int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// Message is one network message: the hardware-prepended destination and
// dispatch instruction pointer followed by the body composed in general
// registers (Section 4.1, "Message Injection").
type Message struct {
	Pri      int
	Src, Dst Coord
	DIP      uint64     // dispatch instruction pointer
	DstAddr  uint64     // the virtual address the message was sent to
	Body     []isa.Word // body words (tag bits preserved)
	Seq      uint64     // injection sequence, for deterministic ordering

	// Hardware acknowledgement fields for the return-to-sender throttling
	// protocol (Section 4.1): when a message reaches its destination "a
	// reply is sent indicating whether the destination was able to handle
	// the message". Acks travel at priority 1 and are consumed by the
	// network output hardware, never by software.
	HWAck bool
	AckOK bool     // destination consumed the message
	Orig  *Message // the returned message contents when AckOK is false

	InjectedAt  int64 // cycle the SEND issued
	DeliveredAt int64 // cycle the message reached the destination queue
	Hops        int
}

// Len returns the total message length in words as the hardware counts it:
// DIP + destination address + body.
func (m *Message) Len() int { return 2 + len(m.Body) }

// Config carries network timing, calibrated so that a neighbour-to-neighbour
// delivery costs 5 cycles (Section 4.2, step 4: "Message delivered to remote
// node (5 cycles)").
type Config struct {
	InjectLat  int64 // network output interface: SEND issue to first hop
	HopLat     int64 // per-hop router traversal
	DeliverLat int64 // network input interface: last hop to queue visible
}

// DefaultConfig returns the calibrated timing.
func DefaultConfig() Config { return Config{InjectLat: 2, HopLat: 1, DeliverLat: 2} }

type inflight struct {
	msg     *Message
	at      Coord // current node
	readyAt int64 // cycle the next hop may begin
}

// msgQueue is an allocation-free FIFO of delivered messages: Pop advances a
// head index instead of re-slicing, and the backing array is reset for reuse
// whenever the queue drains, so steady-state traffic recycles one buffer.
type msgQueue struct {
	buf  []*Message
	head int
}

func (q *msgQueue) push(m *Message) { q.buf = append(q.buf, m) }

func (q *msgQueue) pop() *Message {
	m := q.buf[q.head]
	q.buf[q.head] = nil // release for GC
	q.head++
	if q.head == len(q.buf) {
		q.buf, q.head = q.buf[:0], 0
	}
	return m
}

func (q *msgQueue) len() int { return len(q.buf) - q.head }

// Network is the 3-D mesh interconnect shared by all nodes.
type Network struct {
	cfg  Config `snap:"derived,fixed at construction; decode validates against it"`
	dims Coord  `snap:"derived,fixed at construction; decode validates against it"`
	// flight holds in-flight messages, one list per priority. Injection
	// appends, so each list stays sorted by injection sequence; Step
	// compacts in place, preserving that order.
	flight [NumPriorities][]inflight
	seq    uint64
	// linkBusy enforces one message per link per priority per cycle. It is
	// a flat array indexed by linkIndex (node x dimension x direction x
	// priority) holding the cycle through which the link is granted; stale
	// entries are never consulted, so no per-cycle clearing is needed.
	linkBusy []int64 `snap:"derived,link grants replayed by the first post-restore Step"`
	// arrivals holds delivered messages per node per priority until the
	// node's network input interface consumes them, indexed by node id.
	arrivals [][NumPriorities]msgQueue
	// arrivalCount totals undelivered-to-chip messages across all nodes.
	// It is atomic because Pop runs concurrently under the parallel chip
	// engine (each chip pops only its own node's queues, so the queues
	// themselves are unshared; this counter is the one cross-node write).
	arrivalCount atomic.Int64 `snap:"derived,recomputed from decoded arrivals"`

	// deliveredTo lists the nodes that received at least one delivery
	// during the most recent Step, deduplicated via deliveredMark (per-node
	// cycle of the last recorded delivery). The machine uses it to wake
	// exactly the affected chips instead of scanning every node per cycle.
	deliveredTo   []int   `snap:"derived,per-Step delivery set, rebuilt each Step"`
	deliveredMark []int64 `snap:"derived,per-Step delivery set, rebuilt each Step"`

	// nextWake caches the earliest readyAt among in-flight messages,
	// recomputed by Step and lowered by Inject (the NextEvent source).
	nextWake int64 `snap:"derived,recomputed from decoded in-flight messages"`

	// Stats.
	Injected, Delivered uint64
	TotalHops           uint64
}

// New creates a mesh of the given dimensions.
func New(dims Coord, cfg Config) *Network {
	if dims.X < 1 || dims.Y < 1 || dims.Z < 1 {
		panic(fmt.Sprintf("noc: bad mesh dimensions %v", dims))
	}
	nodes := dims.X * dims.Y * dims.Z
	n := &Network{
		cfg:           cfg,
		dims:          dims,
		linkBusy:      make([]int64, nodes*3*2*NumPriorities),
		arrivals:      make([][NumPriorities]msgQueue, nodes),
		nextWake:      NoEvent,
		deliveredMark: make([]int64, nodes),
	}
	for i := range n.deliveredMark {
		n.deliveredMark[i] = -1 // cycles are never negative
	}
	return n
}

// linkIndex flattens (node, dimension, direction, priority) into the
// linkBusy array.
func (n *Network) linkIndex(from Coord, dim int, neg bool, pri int) int {
	d := 0
	if neg {
		d = 1
	}
	return ((n.Index(from)*3+dim)*2+d)*NumPriorities + pri
}

// Dims returns the mesh dimensions.
func (n *Network) Dims() Coord { return n.dims }

// NumNodes returns the total node count.
func (n *Network) NumNodes() int { return n.dims.X * n.dims.Y * n.dims.Z }

// Index linearizes a coordinate (X-major, matching the GTLB's ordering).
func (n *Network) Index(c Coord) int {
	return c.X + n.dims.X*(c.Y+n.dims.Y*c.Z)
}

// CoordOf inverts Index.
func (n *Network) CoordOf(i int) Coord {
	return Coord{
		X: i % n.dims.X,
		Y: i / n.dims.X % n.dims.Y,
		Z: i / (n.dims.X * n.dims.Y),
	}
}

// InMesh reports whether c is a valid node coordinate.
func (n *Network) InMesh(c Coord) bool {
	return c.X >= 0 && c.X < n.dims.X &&
		c.Y >= 0 && c.Y < n.dims.Y &&
		c.Z >= 0 && c.Z < n.dims.Z
}

// Inject launches a message at cycle now. The caller (the SEND datapath)
// has already performed protection checks and throttling.
func (n *Network) Inject(now int64, m *Message) {
	if !n.InMesh(m.Dst) {
		panic(fmt.Sprintf("noc: destination %v outside mesh %v", m.Dst, n.dims))
	}
	if m.Pri < 0 || m.Pri >= NumPriorities {
		panic(fmt.Sprintf("noc: bad priority %d", m.Pri))
	}
	m.Seq = n.seq
	n.seq++
	m.InjectedAt = now
	n.Injected++
	ready := now + n.cfg.InjectLat
	n.flight[m.Pri] = append(n.flight[m.Pri], inflight{
		msg:     m,
		at:      m.Src,
		readyAt: ready,
	})
	if ready < n.nextWake {
		n.nextWake = ready
	}
}

// Step advances the network by one cycle; now is the current cycle. Higher
// priority (replies) wins link arbitration via its separate virtual channel;
// within a priority, older messages win. The per-priority flight lists are
// already in injection-sequence order, so no sorting is needed; survivors
// are compacted in place and no allocation happens on the steady-state path.
func (n *Network) Step(now int64) {
	wake := NoEvent
	n.deliveredTo = n.deliveredTo[:0]
	for pri := NumPriorities - 1; pri >= 0; pri-- {
		flights := n.flight[pri]
		remaining := flights[:0]
		for _, f := range flights {
			if f.readyAt > now {
				remaining = append(remaining, f)
				if f.readyAt < wake {
					wake = f.readyAt
				}
				continue
			}
			if f.at == f.msg.Dst {
				// Delivery into the node's hardware message queue.
				node := n.Index(f.at)
				n.arrivals[node][pri].push(f.msg)
				n.arrivalCount.Add(1)
				if n.deliveredMark[node] != now {
					n.deliveredMark[node] = now
					n.deliveredTo = append(n.deliveredTo, node)
				}
				f.msg.DeliveredAt = now
				n.Delivered++
				continue
			}
			dim, neg := nextHop(f.at, f.msg.Dst)
			li := n.linkIndex(f.at, dim, neg, pri)
			if n.linkBusy[li] == now+1 {
				// Link already granted this cycle: wait.
				f.readyAt = now + 1
				remaining = append(remaining, f)
				wake = now + 1
				continue
			}
			n.linkBusy[li] = now + 1
			f.at = move(f.at, dim, neg)
			f.msg.Hops++
			n.TotalHops++
			if f.at == f.msg.Dst {
				f.readyAt = now + n.cfg.HopLat + n.cfg.DeliverLat
			} else {
				f.readyAt = now + n.cfg.HopLat
			}
			remaining = append(remaining, f)
			if f.readyAt < wake {
				wake = f.readyAt
			}
		}
		// Clear the moved-from tail so delivered messages can be collected.
		for i := len(remaining); i < len(flights); i++ {
			flights[i] = inflight{}
		}
		n.flight[pri] = remaining
	}
	n.nextWake = wake
}

// NextEvent reports the earliest cycle >= now at which the network's state
// can change on its own: the soonest in-flight readiness, or now while
// delivered messages await consumption by a node. NoEvent means the network
// is empty and will not act until the next Inject.
func (n *Network) NextEvent(now int64) int64 {
	if n.arrivalCount.Load() > 0 {
		return now
	}
	if n.nextWake < now {
		return now
	}
	return n.nextWake
}

// NeedsStep reports whether Step(now) would change any network state, so
// the engine can skip the walk entirely on idle cycles.
func (n *Network) NeedsStep(now int64) bool {
	return (len(n.flight[0]) > 0 || len(n.flight[1]) > 0) && n.nextWake <= now
}

// nextHop applies dimension-order (X, then Y, then Z) routing.
func nextHop(at, dst Coord) (dim int, neg bool) {
	switch {
	case at.X != dst.X:
		return 0, dst.X < at.X
	case at.Y != dst.Y:
		return 1, dst.Y < at.Y
	default:
		return 2, dst.Z < at.Z
	}
}

func move(c Coord, dim int, neg bool) Coord {
	d := 1
	if neg {
		d = -1
	}
	switch dim {
	case 0:
		c.X += d
	case 1:
		c.Y += d
	default:
		c.Z += d
	}
	return c
}

// Pop removes and returns the oldest delivered message of the given
// priority at node c, or nil if none is waiting.
func (n *Network) Pop(c Coord, pri int) *Message {
	q := &n.arrivals[n.Index(c)][pri]
	if q.len() == 0 {
		return nil
	}
	n.arrivalCount.Add(-1)
	return q.pop()
}

// PendingAt reports the number of delivered-but-unconsumed messages at c.
func (n *Network) PendingAt(c Coord, pri int) int {
	return n.arrivals[n.Index(c)][pri].len()
}

// ArrivalsAt returns a view of node i's delivered-but-unconsumed messages
// at priority pri, oldest first. The slice aliases the live queue: it is
// valid only until the next Pop/Deliver/Step and must not be mutated or
// retained. The distributed coordinator uses it to ship copies of
// deliveries to shard workers without consuming the authoritative queue.
func (n *Network) ArrivalsAt(i, pri int) []*Message {
	q := &n.arrivals[i][pri]
	return q.buf[q.head:]
}

// DropArrivals consumes the k oldest delivered messages at (i, pri),
// discarding them. The distributed coordinator calls it when a shard
// worker confirms its chip consumed k messages, keeping the authoritative
// arrival queues exactly equal to the shard-local ones at every sync
// point — which is what makes hub-side Quiescent/NextEvent and checkpoint
// snapshots bit-identical to an in-process run.
func (n *Network) DropArrivals(i, pri, k int) {
	q := &n.arrivals[i][pri]
	if k > q.len() {
		panic(fmt.Sprintf("noc: drop %d arrivals at node %d pri %d, only %d pending", k, i, pri, q.len()))
	}
	for j := 0; j < k; j++ {
		q.pop()
	}
	n.arrivalCount.Add(int64(-k))
}

// Deliver places m directly into node i's arrival queue at priority pri,
// bypassing routing. This is the distributed engine's shard-side mailbox
// primitive: the coordinator's authoritative network routed and delivered
// the message, and the shard replays the delivery into its local replica
// so the destination chip consumes it exactly as it would in-process.
// Queue order is the shipment order, which the coordinator produces in
// per-(node, priority) FIFO order — the only order chips can observe.
func (n *Network) Deliver(i int, pri int, m *Message) {
	n.arrivals[i][pri].push(m)
	n.arrivalCount.Add(1)
}

// ClearTraffic drops all in-flight and delivered-but-unconsumed messages.
// A distributed shard calls it after restoring a full snapshot: the
// authoritative copy of that traffic lives in the coordinator's network,
// and the local replica acts only as a mailbox fed by Deliver — leaving
// the snapshot's copies in place would double-deliver on resume. Sequence
// numbers and statistics are untouched (the coordinator owns those too;
// a shard replica's are never consulted or exported).
func (n *Network) ClearTraffic() {
	for pri := range n.flight {
		n.flight[pri] = n.flight[pri][:0]
	}
	for i := range n.arrivals {
		for pri := range n.arrivals[i] {
			n.arrivals[i][pri] = msgQueue{}
		}
	}
	n.arrivalCount.Store(0)
	n.deliveredTo = nil
	n.nextWake = NoEvent
}

// DeliveredNodes returns the nodes that received at least one delivery
// during the most recent Step, without duplicates, in delivery order. The
// slice is valid until the next Step; callers must not retain it.
func (n *Network) DeliveredNodes() []int { return n.deliveredTo }

// HasArrivals reports whether node i has delivered-but-unconsumed messages
// at either priority.
func (n *Network) HasArrivals(i int) bool {
	return n.arrivals[i][0].len() > 0 || n.arrivals[i][1].len() > 0
}

// InFlight reports the number of messages still travelling.
func (n *Network) InFlight() int { return len(n.flight[0]) + len(n.flight[1]) }

// Quiescent reports whether no messages are in flight or waiting anywhere.
func (n *Network) Quiescent() bool {
	return n.InFlight() == 0 && n.arrivalCount.Load() == 0
}

// Distance returns the Manhattan hop count between two nodes.
func Distance(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y) + abs(a.Z-b.Z)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
