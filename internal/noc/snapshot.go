package noc

// Checkpoint support (DESIGN.md, "Checkpoint/restore") for the mesh:
// in-flight messages with their current position and readiness, the
// per-node arrival queues, the injection sequence, and the statistics.
//
// Deliberately NOT serialized, because none of it is observable across a
// cycle boundary: linkBusy grants (a grant for cycle t+1 written during
// cycle t can never equal a later cycle's test value, so stale entries —
// and their absence — are invisible), the deliveredTo/deliveredMark
// dedup of the most recent Step (consumed by the machine in the same
// cycle), and the nextWake cache (recomputed here from the decoded
// flights).

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/snap"
)

// Decode bounds against corrupt counts.
const (
	maxFlights  = 1 << 20
	maxBodyLen  = 1 << 16
	maxArrivals = 1 << 20
)

func (n *Network) encodeCoord(w *snap.Writer, c Coord) {
	w.Int(c.X)
	w.Int(c.Y)
	w.Int(c.Z)
}

func (n *Network) decodeCoord(r *snap.Reader) Coord {
	c := Coord{X: r.Int(), Y: r.Int(), Z: r.Int()}
	if r.Err() == nil && !n.InMesh(c) {
		r.Fail(fmt.Errorf("noc: snapshot coordinate %v outside mesh %v", c, n.dims))
	}
	return c
}

// encodeMessage writes one message, recursing into the returned original
// carried by a negative hardware acknowledgement.
func (n *Network) encodeMessage(w *snap.Writer, m *Message) {
	w.Int(m.Pri)
	n.encodeCoord(w, m.Src)
	n.encodeCoord(w, m.Dst)
	w.U64(m.DIP)
	w.U64(m.DstAddr)
	isa.EncodeWords(w, m.Body)
	w.U64(m.Seq)
	w.Bool(m.HWAck)
	w.Bool(m.AckOK)
	w.I64(m.InjectedAt)
	w.I64(m.DeliveredAt)
	w.Int(m.Hops)
	if m.Orig != nil {
		w.Bool(true)
		n.encodeMessage(w, m.Orig)
	} else {
		w.Bool(false)
	}
}

func (n *Network) decodeMessage(r *snap.Reader, depth int) *Message {
	m := &Message{
		Pri: r.Int(),
		Src: n.decodeCoord(r),
		Dst: n.decodeCoord(r),
	}
	if r.Err() == nil && (m.Pri < 0 || m.Pri >= NumPriorities) {
		r.Fail(fmt.Errorf("noc: snapshot message priority %d", m.Pri))
	}
	m.DIP = r.U64()
	m.DstAddr = r.U64()
	m.Body = isa.DecodeWords(r, maxBodyLen)
	m.Seq = r.U64()
	m.HWAck = r.Bool()
	m.AckOK = r.Bool()
	m.InjectedAt = r.I64()
	m.DeliveredAt = r.I64()
	m.Hops = r.Int()
	if r.Bool() {
		if depth > 0 {
			r.Fail(fmt.Errorf("noc: snapshot message nests originals beyond one level"))
			return m
		}
		m.Orig = n.decodeMessage(r, depth+1)
	}
	return m
}

// EncodeMessage writes a standalone message (the chips' resend buffers
// hold messages outside the network's own flight lists).
func (n *Network) EncodeMessage(w *snap.Writer, m *Message) { n.encodeMessage(w, m) }

// DecodeMessage reads a message written by EncodeMessage.
func (n *Network) DecodeMessage(r *snap.Reader) *Message { return n.decodeMessage(r, 0) }

// EncodeState writes the network's complete cross-cycle state.
func (n *Network) EncodeState(w *snap.Writer) {
	w.U64(n.seq)
	w.U64(n.Injected)
	w.U64(n.Delivered)
	w.U64(n.TotalHops)
	for pri := range n.flight {
		w.Len(len(n.flight[pri]))
		for i := range n.flight[pri] {
			f := &n.flight[pri][i]
			n.encodeMessage(w, f.msg)
			n.encodeCoord(w, f.at)
			w.I64(f.readyAt)
		}
	}
	for node := range n.arrivals {
		for pri := range n.arrivals[node] {
			q := &n.arrivals[node][pri]
			w.Len(q.len())
			for i := q.head; i < len(q.buf); i++ {
				n.encodeMessage(w, q.buf[i])
			}
		}
	}
}

// DecodeNetworkState reads a network written by EncodeState into a
// detached scratch network of the given shape. The next-wake cache is
// recomputed from the decoded flights and the arrival count from the
// decoded queues.
func DecodeNetworkState(r *snap.Reader, dims Coord, cfg Config) *Network {
	n := New(dims, cfg)
	n.seq = r.U64()
	n.Injected = r.U64()
	n.Delivered = r.U64()
	n.TotalHops = r.U64()
	for pri := range n.flight {
		cnt := r.Len(maxFlights)
		for i := 0; i < cnt; i++ {
			f := inflight{
				msg:     n.decodeMessage(r, 0),
				at:      n.decodeCoord(r),
				readyAt: r.I64(),
			}
			n.flight[pri] = append(n.flight[pri], f)
			if f.readyAt < n.nextWake {
				n.nextWake = f.readyAt
			}
		}
	}
	total := int64(0)
	for node := range n.arrivals {
		for pri := range n.arrivals[node] {
			cnt := r.Len(maxArrivals)
			for i := 0; i < cnt; i++ {
				n.arrivals[node][pri].push(n.decodeMessage(r, 0))
			}
			total += int64(cnt)
		}
	}
	n.arrivalCount.Store(total)
	return n
}

// Adopt replaces n's cross-cycle state with src's (same shape; the caller
// guarantees it by decoding with n's own dims and config). Link grants
// and the last-Step delivery dedup are reset — see the package note above
// for why that is unobservable.
func (n *Network) Adopt(src *Network) {
	for pri := range n.flight {
		n.flight[pri] = src.flight[pri]
	}
	n.seq = src.seq
	n.Injected = src.Injected
	n.Delivered = src.Delivered
	n.TotalHops = src.TotalHops
	copy(n.arrivals, src.arrivals)
	n.arrivalCount.Store(src.arrivalCount.Load())
	n.nextWake = src.nextWake
	clear(n.linkBusy)
	n.deliveredTo = n.deliveredTo[:0]
	for i := range n.deliveredMark {
		n.deliveredMark[i] = -1
	}
}
