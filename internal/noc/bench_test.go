package noc

import "testing"

// BenchmarkNetworkStep measures the per-cycle cost of the network walk in
// steady state: 32 messages bounce continuously between opposite corners
// of a 4x4x2 mesh, each delivery immediately re-injected in the reverse
// direction. The inner loop must show zero allocations per cycle — the
// flight lists compact in place, link arbitration uses a flat array, and
// the arrival queues recycle their backing storage.
func BenchmarkNetworkStep(b *testing.B) {
	n := New(Coord{X: 4, Y: 4, Z: 2}, DefaultConfig())
	corners := [2]Coord{{0, 0, 0}, {3, 3, 1}}
	for i := 0; i < 32; i++ {
		src, dst := corners[i%2], corners[(i+1)%2]
		n.Inject(0, &Message{Pri: i % NumPriorities, Src: src, Dst: dst})
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		n.Step(now)
		for idx := 0; idx < n.NumNodes(); idx++ {
			c := n.CoordOf(idx)
			for pri := 0; pri < NumPriorities; pri++ {
				for m := n.Pop(c, pri); m != nil; m = n.Pop(c, pri) {
					m.Src, m.Dst = m.Dst, m.Src
					m.Hops = 0
					n.Inject(now, m)
				}
			}
		}
		now++
	}
}

// TestNetworkStepNoAllocs pins the zero-allocation property so a regression
// fails tests, not just a benchmark eyeball.
func TestNetworkStepNoAllocs(t *testing.T) {
	n := New(Coord{X: 4, Y: 4, Z: 2}, DefaultConfig())
	corners := [2]Coord{{0, 0, 0}, {3, 3, 1}}
	for i := 0; i < 32; i++ {
		src, dst := corners[i%2], corners[(i+1)%2]
		n.Inject(0, &Message{Pri: i % NumPriorities, Src: src, Dst: dst})
	}
	now := int64(0)
	cycle := func() {
		n.Step(now)
		for idx := 0; idx < n.NumNodes(); idx++ {
			c := n.CoordOf(idx)
			for pri := 0; pri < NumPriorities; pri++ {
				for m := n.Pop(c, pri); m != nil; m = n.Pop(c, pri) {
					m.Src, m.Dst = m.Dst, m.Src
					m.Hops = 0
					n.Inject(now, m)
				}
			}
		}
		now++
	}
	for i := 0; i < 200; i++ { // warm up buffers to steady state
		cycle()
	}
	if avg := testing.AllocsPerRun(500, cycle); avg != 0 {
		t.Errorf("network steady-state cycle allocates %.2f objects, want 0", avg)
	}
}
