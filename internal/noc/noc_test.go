package noc

import (
	"testing"

	"repro/internal/isa"
)

func stepUntilDelivered(t *testing.T, n *Network, dst Coord, pri int, limit int64) *Message {
	t.Helper()
	for now := int64(0); now < limit; now++ {
		n.Step(now)
		if m := n.Pop(dst, pri); m != nil {
			return m
		}
	}
	t.Fatalf("no delivery at %v pri %d within %d cycles", dst, pri, limit)
	return nil
}

func TestNeighbourDeliveryIsFiveCycles(t *testing.T) {
	n := New(Coord{2, 1, 1}, DefaultConfig())
	m := &Message{Src: Coord{0, 0, 0}, Dst: Coord{1, 0, 0}, DIP: 7, Body: []isa.Word{isa.W(42)}}
	n.Inject(0, m)
	got := stepUntilDelivered(t, n, Coord{1, 0, 0}, 0, 100)
	// Paper, Section 4.2 step 4: "Message delivered to remote node (5 cycles)".
	if got.DeliveredAt != 5 {
		t.Errorf("neighbour delivery = %d cycles, want 5", got.DeliveredAt)
	}
	if got.DIP != 7 || got.Body[0].Bits != 42 {
		t.Errorf("message corrupted: %+v", got)
	}
}

func TestLatencyGrowsWithDistance(t *testing.T) {
	var prev int64 = -1
	for d := 1; d <= 3; d++ {
		n := New(Coord{4, 4, 4}, DefaultConfig())
		m := &Message{Src: Coord{0, 0, 0}, Dst: Coord{d, 0, 0}}
		n.Inject(0, m)
		got := stepUntilDelivered(t, n, m.Dst, 0, 100)
		lat := got.DeliveredAt - got.InjectedAt
		if lat <= prev {
			t.Errorf("distance %d latency %d not monotonic (prev %d)", d, lat, prev)
		}
		prev = lat
		if got.Hops != d {
			t.Errorf("distance %d: hops = %d", d, got.Hops)
		}
	}
}

func TestDimensionOrderRouting(t *testing.T) {
	n := New(Coord{3, 3, 3}, DefaultConfig())
	m := &Message{Src: Coord{0, 0, 0}, Dst: Coord{2, 1, 2}}
	n.Inject(0, m)
	got := stepUntilDelivered(t, n, m.Dst, 0, 200)
	if got.Hops != Distance(m.Src, m.Dst) {
		t.Errorf("hops = %d, want Manhattan distance %d", got.Hops, Distance(m.Src, m.Dst))
	}
}

func TestPrioritySeparation(t *testing.T) {
	// A reply (pri 1) must not wait behind a flood of requests (pri 0)
	// sharing the same physical links.
	n := New(Coord{2, 1, 1}, DefaultConfig())
	for i := 0; i < 20; i++ {
		n.Inject(0, &Message{Src: Coord{0, 0, 0}, Dst: Coord{1, 0, 0}, Pri: 0})
	}
	reply := &Message{Src: Coord{0, 0, 0}, Dst: Coord{1, 0, 0}, Pri: 1}
	n.Inject(0, reply)
	got := stepUntilDelivered(t, n, Coord{1, 0, 0}, 1, 200)
	if got.DeliveredAt != 5 {
		t.Errorf("reply delivery = %d cycles under request flood, want 5", got.DeliveredAt)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	n := New(Coord{2, 1, 1}, DefaultConfig())
	a := &Message{Src: Coord{0, 0, 0}, Dst: Coord{1, 0, 0}}
	b := &Message{Src: Coord{0, 0, 0}, Dst: Coord{1, 0, 0}}
	n.Inject(0, a)
	n.Inject(0, b)
	for now := int64(0); now < 50; now++ {
		n.Step(now)
	}
	first := n.Pop(Coord{1, 0, 0}, 0)
	second := n.Pop(Coord{1, 0, 0}, 0)
	if first == nil || second == nil {
		t.Fatal("both messages should arrive")
	}
	if first.Seq != a.Seq {
		t.Errorf("older message delivered second")
	}
	if second.DeliveredAt <= first.DeliveredAt {
		t.Errorf("contending messages delivered at %d and %d, want serialized",
			first.DeliveredAt, second.DeliveredAt)
	}
}

func TestFIFOOrderPerPriority(t *testing.T) {
	n := New(Coord{4, 1, 1}, DefaultConfig())
	for i := uint64(0); i < 5; i++ {
		n.Inject(int64(i), &Message{Src: Coord{0, 0, 0}, Dst: Coord{3, 0, 0}, DIP: i})
	}
	for now := int64(0); now < 100; now++ {
		n.Step(now)
	}
	for i := uint64(0); i < 5; i++ {
		m := n.Pop(Coord{3, 0, 0}, 0)
		if m == nil || m.DIP != i {
			t.Fatalf("delivery %d = %+v, want DIP %d", i, m, i)
		}
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	n := New(Coord{3, 4, 5}, DefaultConfig())
	for i := 0; i < n.NumNodes(); i++ {
		c := n.CoordOf(i)
		if !n.InMesh(c) {
			t.Fatalf("CoordOf(%d) = %v not in mesh", i, c)
		}
		if n.Index(c) != i {
			t.Fatalf("Index(CoordOf(%d)) = %d", i, n.Index(c))
		}
	}
	if n.InMesh(Coord{3, 0, 0}) {
		t.Error("out-of-range coord reported in mesh")
	}
}

func TestQuiescent(t *testing.T) {
	n := New(Coord{2, 1, 1}, DefaultConfig())
	if !n.Quiescent() {
		t.Fatal("fresh network not quiescent")
	}
	n.Inject(0, &Message{Src: Coord{0, 0, 0}, Dst: Coord{1, 0, 0}})
	if n.Quiescent() {
		t.Fatal("network with in-flight message reported quiescent")
	}
	for now := int64(0); now < 20; now++ {
		n.Step(now)
	}
	if n.Quiescent() {
		t.Fatal("undelivered-but-queued message should keep network non-quiescent")
	}
	n.Pop(Coord{1, 0, 0}, 0)
	if !n.Quiescent() {
		t.Fatal("network should be quiescent after consumption")
	}
}

func TestSelfDelivery(t *testing.T) {
	// A node may send to itself (e.g. a local page mapped through the GTLB).
	n := New(Coord{1, 1, 1}, DefaultConfig())
	n.Inject(0, &Message{Src: Coord{0, 0, 0}, Dst: Coord{0, 0, 0}, DIP: 9})
	m := stepUntilDelivered(t, n, Coord{0, 0, 0}, 0, 50)
	if m.DIP != 9 || m.Hops != 0 {
		t.Errorf("self delivery = %+v", m)
	}
}

func TestStats(t *testing.T) {
	n := New(Coord{2, 2, 1}, DefaultConfig())
	n.Inject(0, &Message{Src: Coord{0, 0, 0}, Dst: Coord{1, 1, 0}})
	for now := int64(0); now < 50; now++ {
		n.Step(now)
	}
	if n.Injected != 1 || n.Delivered != 1 || n.TotalHops != 2 {
		t.Errorf("stats: injected=%d delivered=%d hops=%d", n.Injected, n.Delivered, n.TotalHops)
	}
}

func TestMessageLen(t *testing.T) {
	m := &Message{Body: []isa.Word{isa.W(1), isa.W(2)}}
	// DIP + address + 2 body words = 4; the paper's remote store example is
	// "a 3 word message" = DIP + address + 1 body word.
	if m.Len() != 4 {
		t.Errorf("Len = %d, want 4", m.Len())
	}
}
