package noc

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/snap"
	"repro/internal/snap/snaptest"
)

// TestNetworkFieldRoundTrip mutates every serializable Network field
// and asserts the encoding both sees the change and round-trips it.
// The derived caches (linkBusy, delivery sets, nextWake) are excluded
// by their snap:"derived" tags, matching the snapshot doc comment's
// deliberately-unserialized list.
func TestNetworkFieldRoundTrip(t *testing.T) {
	dims := Coord{X: 2, Y: 1, Z: 1}
	cfg := DefaultConfig()
	n := New(dims, cfg)
	mk := func(seq uint64) *Message {
		return &Message{
			Dst: Coord{X: 1}, DIP: 5, DstAddr: 64,
			Body: []isa.Word{isa.W(9)}, Seq: seq,
			InjectedAt: 1, Hops: 1,
		}
	}
	n.flight[0] = append(n.flight[0], inflight{msg: mk(1), at: Coord{}, readyAt: 4})
	n.arrivals[1][0].push(mk(2))
	n.seq = 3
	n.Injected, n.Delivered, n.TotalHops = 2, 1, 5

	snaptest.Fields(t, n, snaptest.Codec[Network]{
		Encode: func(n *Network) []byte { return snaptest.Encode(t, n.EncodeState) },
		Decode: func(data []byte) (*Network, error) {
			r := snap.NewReader(bytes.NewReader(data))
			d := DecodeNetworkState(r, dims, cfg)
			return d, r.Err()
		},
		Mutate: map[string]func(*Network) func(){
			"flight": func(n *Network) func() {
				n.flight[0][0].readyAt ^= 1
				return func() { n.flight[0][0].readyAt ^= 1 }
			},
			"arrivals": func(n *Network) func() {
				n.arrivals[1][0].buf[0].DIP ^= 1
				return func() { n.arrivals[1][0].buf[0].DIP ^= 1 }
			},
		},
	})
}
