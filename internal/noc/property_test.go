package noc

// Property tests: every injected message is delivered exactly once, intact,
// to its addressed destination, regardless of traffic pattern; and
// dimension-order routes use exactly the Manhattan distance.

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func TestExactlyOnceDeliveryUnderRandomTraffic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := New(Coord{3, 3, 2}, DefaultConfig())
		type key struct {
			dip uint64
			dst Coord
		}
		want := map[key]int{}
		const msgs = 200
		now := int64(0)
		for i := 0; i < msgs; i++ {
			src := n.CoordOf(rng.Intn(n.NumNodes()))
			dst := n.CoordOf(rng.Intn(n.NumNodes()))
			m := &Message{
				Pri:  rng.Intn(NumPriorities),
				Src:  src,
				Dst:  dst,
				DIP:  uint64(i),
				Body: []isa.Word{isa.W(uint64(i) * 3)},
			}
			want[key{uint64(i), dst}]++
			n.Inject(now, m)
			if rng.Intn(3) == 0 {
				n.Step(now)
				now++
			}
		}
		for i := 0; i < 10000 && n.InFlight() > 0; i++ {
			n.Step(now)
			now++
		}
		if n.InFlight() != 0 {
			t.Fatalf("seed %d: %d messages stuck in flight", seed, n.InFlight())
		}
		got := 0
		for node := 0; node < n.NumNodes(); node++ {
			c := n.CoordOf(node)
			for pri := 0; pri < NumPriorities; pri++ {
				for {
					m := n.Pop(c, pri)
					if m == nil {
						break
					}
					k := key{m.DIP, c}
					if want[k] == 0 {
						t.Fatalf("seed %d: message %d delivered to wrong node %v", seed, m.DIP, c)
					}
					want[k]--
					if m.Body[0].Bits != m.DIP*3 {
						t.Fatalf("seed %d: message %d body corrupted", seed, m.DIP)
					}
					if m.Hops != Distance(m.Src, m.Dst) {
						t.Fatalf("seed %d: message %d took %d hops, want %d",
							seed, m.DIP, m.Hops, Distance(m.Src, m.Dst))
					}
					got++
				}
			}
		}
		if got != msgs {
			t.Fatalf("seed %d: delivered %d/%d", seed, got, msgs)
		}
	}
}

func TestLatencyBoundedByLoad(t *testing.T) {
	// With k messages sharing one link, the last delivery is delayed by at
	// least k-1 cycles (one message per link per cycle) and the network
	// still drains.
	n := New(Coord{2, 1, 1}, DefaultConfig())
	const k = 10
	for i := 0; i < k; i++ {
		n.Inject(0, &Message{Src: Coord{0, 0, 0}, Dst: Coord{1, 0, 0}, DIP: uint64(i)})
	}
	var last int64
	for now := int64(0); now < 200; now++ {
		n.Step(now)
	}
	for {
		m := n.Pop(Coord{1, 0, 0}, 0)
		if m == nil {
			break
		}
		if m.DeliveredAt > last {
			last = m.DeliveredAt
		}
	}
	minLast := int64(5 + k - 1) // 5-cycle base + serialization
	if last < minLast {
		t.Errorf("last delivery at %d, want >= %d under contention", last, minLast)
	}
}
