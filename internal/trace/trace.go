// Package trace records simulation events with cycle timestamps so the
// remote access timelines of Figure 9 can be reconstructed and printed.
package trace

import (
	"fmt"
	"strings"
)

// Event is one timestamped simulator occurrence.
type Event struct {
	Cycle  int64
	Node   int
	Name   string
	Detail string
}

// Recorder accumulates events; install Hook on a machine.
type Recorder struct {
	Events []Event
}

// Hook returns the callback to install with machine.SetTrace.
func (r *Recorder) Hook() func(cycle int64, node int, event, detail string) {
	return func(cycle int64, node int, event, detail string) {
		r.Events = append(r.Events, Event{cycle, node, event, detail})
	}
}

// Reset clears recorded events.
func (r *Recorder) Reset() { r.Events = r.Events[:0] }

// Filter returns events whose name is in names (all if empty), at or after
// cycle from.
func (r *Recorder) Filter(from int64, names ...string) []Event {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []Event
	for _, e := range r.Events {
		if e.Cycle >= from && (len(want) == 0 || want[e.Name]) {
			out = append(out, e)
		}
	}
	return out
}

// First returns the first event with the given name at or after cycle from,
// and whether one exists.
func (r *Recorder) First(from int64, name string) (Event, bool) {
	for _, e := range r.Events {
		if e.Cycle >= from && e.Name == name {
			return e, true
		}
	}
	return Event{}, false
}

// FirstMatch returns the first event at or after from for which pred holds.
func (r *Recorder) FirstMatch(from int64, pred func(Event) bool) (Event, bool) {
	for _, e := range r.Events {
		if e.Cycle >= from && pred(e) {
			return e, true
		}
	}
	return Event{}, false
}

// Timeline renders events as a two-column per-node timeline normalized to
// cycle zero at the first event, in the style of Figure 9.
func Timeline(events []Event, nodes ...int) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	base := events[0].Cycle
	var b strings.Builder
	fmt.Fprintf(&b, "%8s  %s\n", "cycle", "event")
	for _, e := range events {
		keep := len(nodes) == 0
		for _, n := range nodes {
			if e.Node == n {
				keep = true
			}
		}
		if !keep {
			continue
		}
		fmt.Fprintf(&b, "%8d  NODE %d: %-14s %s\n", e.Cycle-base, e.Node, e.Name, e.Detail)
	}
	return b.String()
}
