package trace

import (
	"strings"
	"testing"
)

func recorderWith(events ...Event) *Recorder {
	r := &Recorder{}
	hook := r.Hook()
	for _, e := range events {
		hook(e.Cycle, e.Node, e.Name, e.Detail)
	}
	return r
}

func TestHookRecords(t *testing.T) {
	r := recorderWith(
		Event{1, 0, "send", "a"},
		Event{2, 1, "msg-recv", "b"},
	)
	if len(r.Events) != 2 || r.Events[0].Name != "send" || r.Events[1].Node != 1 {
		t.Errorf("events = %+v", r.Events)
	}
	r.Reset()
	if len(r.Events) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestFilter(t *testing.T) {
	r := recorderWith(
		Event{1, 0, "send", ""},
		Event{2, 0, "event", ""},
		Event{3, 1, "send", ""},
		Event{4, 1, "rstw", ""},
	)
	got := r.Filter(0, "send")
	if len(got) != 2 || got[0].Cycle != 1 || got[1].Cycle != 3 {
		t.Errorf("Filter(send) = %+v", got)
	}
	got = r.Filter(3)
	if len(got) != 2 {
		t.Errorf("Filter(from=3) = %+v", got)
	}
	got = r.Filter(0, "send", "rstw")
	if len(got) != 3 {
		t.Errorf("Filter(send,rstw) = %+v", got)
	}
}

func TestFirstAndFirstMatch(t *testing.T) {
	r := recorderWith(
		Event{5, 0, "send", "x"},
		Event{9, 1, "send", "y"},
	)
	e, ok := r.First(0, "send")
	if !ok || e.Cycle != 5 {
		t.Errorf("First = %+v, %v", e, ok)
	}
	e, ok = r.First(6, "send")
	if !ok || e.Cycle != 9 {
		t.Errorf("First(from 6) = %+v, %v", e, ok)
	}
	if _, ok := r.First(10, "send"); ok {
		t.Error("First past all events should fail")
	}
	e, ok = r.FirstMatch(0, func(e Event) bool { return e.Node == 1 })
	if !ok || e.Detail != "y" {
		t.Errorf("FirstMatch = %+v, %v", e, ok)
	}
	if _, ok := r.FirstMatch(0, func(Event) bool { return false }); ok {
		t.Error("FirstMatch with false pred should fail")
	}
}

func TestTimelineNormalizesAndFiltersNodes(t *testing.T) {
	events := []Event{
		{100, 0, "send", "a"},
		{105, 1, "msg-recv", "b"},
		{110, 2, "other", "c"},
	}
	out := Timeline(events, 0, 1)
	if !strings.Contains(out, "NODE 0: send") || !strings.Contains(out, "NODE 1: msg-recv") {
		t.Errorf("timeline missing events:\n%s", out)
	}
	if strings.Contains(out, "NODE 2") {
		t.Errorf("timeline should exclude node 2:\n%s", out)
	}
	// Normalized to the first event's cycle.
	if !strings.Contains(out, "       0  NODE 0") {
		t.Errorf("timeline not normalized:\n%s", out)
	}
	if Timeline(nil) != "(no events)\n" {
		t.Error("empty timeline wrong")
	}
	// No node filter: include everything.
	all := Timeline(events)
	if !strings.Contains(all, "NODE 2") {
		t.Error("unfiltered timeline should include node 2")
	}
}
