// Package faultinject is the deterministic fault-injection harness for
// supervised runs (DESIGN.md, "Supervised runs & fault injection"). It
// manufactures the failures internal/guard exists to contain — worker
// panics at a chosen (chip, cycle), wall-clock stalls, wedged workers,
// corrupted snapshot streams — as reproducible, seedable artifacts, so
// the containment paths are exercised by ordinary tests and the
// `mbench -faults` soak leg instead of waiting for a real crash.
//
// Two fault families:
//
//   - Execution faults are machine fault probes (Machine.SetFaultProbe):
//     pure functions of (node, cycle), so a fault fires at the identical
//     simulation point under every engine — serial, event-driven, or any
//     parallel shard layout — and a test can assert the exact crash site
//     the guard reports. PanicAt raises an *InjectedPanic (which carries
//     its own crash site); StallAt burns wall-clock time to trip timeout
//     watchdogs without touching simulated state; BlockUntil wedges the
//     stepping goroutine to exercise the hang/grace path.
//
//   - Stream faults corrupt snapshot bytes: Truncate, FlipBit, and the
//     seeded Corrupter, which derives every mutation from a splitmix-style
//     generator so a corpus of damaged snapshots is reproducible from a
//     single integer seed (no math/rand, no global state).
package faultinject

import (
	"fmt"
	"time"
)

// InjectedPanic is the panic value PanicAt raises. It implements the
// guard's crash-site interface, so a contained crash is attributed to the
// injected (node, cycle) exactly.
type InjectedPanic struct {
	Node  int
	Cycle int64
}

func (p *InjectedPanic) Error() string {
	return fmt.Sprintf("injected panic at node %d, cycle %d", p.Node, p.Cycle)
}

// CrashSite reports where the fault was injected (guard.CrashError's
// Node/Cycle attribution).
func (p *InjectedPanic) CrashSite() (node int, cycle int64) { return p.Node, p.Cycle }

// Probe is a machine fault probe (the Machine.SetFaultProbe signature):
// called immediately before a chip steps, possibly concurrently for
// distinct nodes under the parallel engine.
type Probe func(node int, cycle int64)

// PanicAt returns a probe that panics with an *InjectedPanic the first
// time chip node is about to step cycle. The probe fires before the step,
// so the machine state at containment is the clean between-cycles state
// for that chip — what makes crash-dump resume exact on serial engines.
func PanicAt(node int, cycle int64) Probe {
	return func(n int, c int64) {
		if n == node && c == cycle {
			panic(&InjectedPanic{Node: n, Cycle: c})
		}
	}
}

// StallAt returns a probe that sleeps d of wall-clock time every time
// chip node steps a cycle >= from — a simulated-state no-op that makes
// the run arbitrarily slow, for tripping wall-clock watchdogs
// deterministically in simulation space (the stop flag still lands on a
// cycle boundary; only *which* boundary is host-dependent).
func StallAt(node int, from int64, d time.Duration) Probe {
	return func(n int, c int64) {
		if n == node && c >= from {
			time.Sleep(d)
		}
	}
}

// BlockUntil returns a probe that blocks on release the first time chip
// node is about to step cycle — a wedged worker that never reaches the
// run loop's stop check, for exercising the guard's hang/grace path.
// Close release to un-wedge it (tests must, or the goroutine leaks past
// the test).
func BlockUntil(node int, cycle int64, release <-chan struct{}) Probe {
	return func(n int, c int64) {
		if n == node && c == cycle {
			<-release
		}
	}
}

// Chain composes probes; each fires in order on every step.
func Chain(probes ...Probe) Probe {
	return func(n int, c int64) {
		for _, p := range probes {
			p(n, c)
		}
	}
}

// Truncate returns the first n bytes of b (all of b if n is past the
// end) — the torn-write / short-read snapshot fault.
func Truncate(b []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(b) {
		n = len(b)
	}
	return b[:n:n]
}

// FlipBit returns a copy of b with the given bit inverted (bit counts
// from the start of the stream, little-endian within a byte). No-op on
// an out-of-range bit.
func FlipBit(b []byte, bit int) []byte {
	out := append([]byte(nil), b...)
	if i := bit / 8; bit >= 0 && i < len(out) {
		out[i] ^= 1 << (bit % 8)
	}
	return out
}

// Corrupter derives a reproducible stream of snapshot corruptions from a
// seed: the same seed always yields the same damage, so a failing corpus
// entry is a single integer in a test log. The zero value is seed 0.
type Corrupter struct {
	state uint64
}

// NewCorrupter seeds a Corrupter.
func NewCorrupter(seed uint64) *Corrupter { return &Corrupter{state: seed} }

// next is a splitmix64 step: a full-period 64-bit mixer, deterministic
// and dependency-free (crypto quality is irrelevant here; reproducibility
// is everything).
func (c *Corrupter) next() uint64 {
	c.state += 0x9e3779b97f4a7c15
	z := c.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n); n must be > 0.
func (c *Corrupter) intn(n int) int { return int(c.next() % uint64(n)) }

// Truncate cuts b at a derived point strictly inside the stream (never a
// no-op for len(b) > 1).
func (c *Corrupter) Truncate(b []byte) []byte {
	if len(b) < 2 {
		return Truncate(b, 0)
	}
	return Truncate(b, 1+c.intn(len(b)-1))
}

// FlipBit inverts one derived bit of b.
func (c *Corrupter) FlipBit(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	return FlipBit(b, c.intn(len(b)*8))
}

// Scramble overwrites a short derived span of b with derived bytes — the
// "page of garbage in the middle of the stream" fault.
func (c *Corrupter) Scramble(b []byte) []byte {
	out := append([]byte(nil), b...)
	if len(out) == 0 {
		return out
	}
	n := 1 + c.intn(16)
	at := c.intn(len(out))
	for i := 0; i < n && at+i < len(out); i++ {
		out[at+i] = byte(c.next())
	}
	return out
}

// Mutate applies one derived fault — truncation, bit flip, or scramble —
// chosen by the seed stream. The soak harness calls this in a loop to
// sweep the fault space from one base snapshot.
func (c *Corrupter) Mutate(b []byte) []byte {
	switch c.intn(3) {
	case 0:
		return c.Truncate(b)
	case 1:
		return c.FlipBit(b)
	}
	return c.Scramble(b)
}
