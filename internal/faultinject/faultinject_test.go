package faultinject_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/rt"
)

// engines is the containment matrix: every fault below must produce the
// identical typed failure at the identical simulation point under each.
var engines = []struct {
	name    string
	naive   bool
	workers int
}{
	{"naive", true, 0},
	{"event", false, 0},
	{"parallel3", false, 3},
}

func newM(t *testing.T, nodes int, naive bool, workers int) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Dims = noc.Coord{X: nodes, Y: 1, Z: 1}
	cfg.Workers = workers
	m := machine.New(cfg)
	m.Naive = naive
	t.Cleanup(m.Close)
	if _, err := rt.Install(m, rt.Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if err := m.MapNodeRange(uint64(i)*4096, 4, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nodes; i++ {
		p, err := asm.Assemble("user", `
spin:
    add i1, i1, #1
    br spin
`)
		if err != nil {
			t.Fatal(err)
		}
		m.Chip(i).LoadProgram(0, 0, p, true)
	}
	return m
}

// TestInjectedPanicAllEngines: PanicAt(chip, cycle) is contained as a
// *guard.CrashError attributed to exactly that chip and cycle under every
// engine — the harness's reason to exist.
func TestInjectedPanicAllEngines(t *testing.T) {
	for _, e := range engines {
		t.Run(e.name, func(t *testing.T) {
			m := newM(t, 6, e.naive, e.workers)
			m.SetFaultProbe(faultinject.PanicAt(3, 200))
			s := guard.New(m, guard.Options{})
			_, err := s.Run(1 << 40)
			var ce *guard.CrashError
			if !errors.As(err, &ce) {
				t.Fatalf("want *CrashError, got %v", err)
			}
			if ce.Node != 3 || ce.Cycle != 200 {
				t.Fatalf("crash site node %d cycle %d, want node 3 cycle 200", ce.Node, ce.Cycle)
			}
			var ip *faultinject.InjectedPanic
			if v, ok := ce.Value.(*faultinject.InjectedPanic); !ok {
				t.Fatalf("panic value %#v, want *InjectedPanic", ce.Value)
			} else {
				ip = v
			}
			if ip.Node != 3 || ip.Cycle != 200 {
				t.Fatalf("injected site %d/%d mangled in transit", ip.Node, ip.Cycle)
			}
		})
	}
}

// TestStallTripsWatchdog: StallAt makes the run slow without touching
// simulated state; the wall-clock watchdog cuts it off as StallTimeout.
func TestStallTripsWatchdog(t *testing.T) {
	m := newM(t, 1, false, 0)
	m.SetFaultProbe(faultinject.StallAt(0, 0, 5*time.Millisecond))
	s := guard.New(m, guard.Options{Timeout: 40 * time.Millisecond})
	_, err := s.Run(1 << 40)
	var se *guard.StallError
	if !errors.As(err, &se) || se.Kind != guard.StallTimeout {
		t.Fatalf("want StallTimeout, got %v", err)
	}
}

// TestBlockTripsHang: a probe that never returns wedges the stepping
// goroutine mid-cycle; the guard gives up after the grace period with
// StallHang and no dump.
func TestBlockTripsHang(t *testing.T) {
	m := newM(t, 1, false, 0)
	release := make(chan struct{})
	defer close(release)
	m.SetFaultProbe(faultinject.BlockUntil(0, 50, release))
	s := guard.New(m, guard.Options{Timeout: 10 * time.Millisecond, Grace: 40 * time.Millisecond})
	_, err := s.Run(1 << 40)
	if !guard.IsHang(err) {
		t.Fatalf("want hang, got %v", err)
	}
}

// TestChain: chained probes all fire.
func TestChain(t *testing.T) {
	m := newM(t, 2, false, 0)
	hits := 0
	m.SetFaultProbe(faultinject.Chain(
		func(n int, c int64) {
			if c == 10 {
				hits++
			}
		},
		faultinject.PanicAt(1, 20),
	))
	s := guard.New(m, guard.Options{})
	_, err := s.Run(1 << 40)
	var ce *guard.CrashError
	if !errors.As(err, &ce) || ce.Node != 1 || ce.Cycle != 20 {
		t.Fatalf("chained panic lost: %v", err)
	}
	if hits != 2 { // both chips stepped cycle 10
		t.Fatalf("first probe in chain fired %d times at cycle 10, want 2", hits)
	}
}

// TestStreamFaultsDeterministic: the seeded Corrupter reproduces the
// identical damage from the identical seed, and its primitives behave.
func TestStreamFaultsDeterministic(t *testing.T) {
	base := []byte(strings.Repeat("the quick brown fox ", 40))
	a, b := faultinject.NewCorrupter(42), faultinject.NewCorrupter(42)
	for i := 0; i < 32; i++ {
		x, y := a.Mutate(base), b.Mutate(base)
		if !bytes.Equal(x, y) {
			t.Fatalf("seed 42 diverged at mutation %d", i)
		}
		if bytes.Equal(x, base) && len(x) == len(base) {
			t.Fatalf("mutation %d was a no-op", i)
		}
	}
	if c := faultinject.NewCorrupter(43); bytes.Equal(c.Mutate(base), faultinject.NewCorrupter(42).Mutate(base)) {
		t.Fatal("different seeds produced identical damage")
	}
	if got := faultinject.Truncate(base, 7); len(got) != 7 {
		t.Fatalf("Truncate kept %d bytes, want 7", len(got))
	}
	if got := faultinject.FlipBit(base, 13); bytes.Equal(got, base) || len(got) != len(base) {
		t.Fatal("FlipBit did not flip exactly in place")
	}
}

// TestCorruptSnapshotNeverPanics: every seeded corruption of a real
// snapshot either restores cleanly (a lucky benign flip) or fails with a
// descriptive error — never a panic, never a half-mutated machine (the
// restore target must still resume and complete afterwards). This is the
// library-level twin of FuzzSnapshotDecode.
func TestCorruptSnapshotNeverPanics(t *testing.T) {
	src := newM(t, 2, false, 0)
	if _, err := src.Run(300); err != nil && !errors.Is(err, machine.ErrCycleLimit) {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()

	dst := newM(t, 2, false, 0)
	var pristine bytes.Buffer
	if err := dst.Save(&pristine); err != nil {
		t.Fatal(err)
	}
	c := faultinject.NewCorrupter(7)
	for i := 0; i < 64; i++ {
		damaged := c.Mutate(base)
		func() {
			defer func() {
				if v := recover(); v != nil {
					t.Fatalf("restore of corrupt stream %d panicked: %v", i, v)
				}
			}()
			if err := dst.Restore(bytes.NewReader(damaged)); err != nil {
				// Failed restores must leave dst untouched.
				var now bytes.Buffer
				if err := dst.Save(&now); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(now.Bytes(), pristine.Bytes()) {
					t.Fatalf("corrupt stream %d half-mutated the machine", i)
				}
			} else {
				// A benign mutation restored: adopt that state as the new
				// baseline for the untouched-on-failure check.
				pristine.Reset()
				if err := dst.Save(&pristine); err != nil {
					t.Fatal(err)
				}
			}
		}()
	}
}

// TestInjectedSiteSweep: the fault fires regardless of which engine, for
// a spread of sites — guarding against shard-layout-dependent probe
// skips.
func TestInjectedSiteSweep(t *testing.T) {
	for _, e := range engines {
		for _, site := range []struct {
			node  int
			cycle int64
		}{{0, 1}, {5, 777}, {2, 64}} {
			name := fmt.Sprintf("%s/n%dc%d", e.name, site.node, site.cycle)
			t.Run(name, func(t *testing.T) {
				m := newM(t, 6, e.naive, e.workers)
				m.SetFaultProbe(faultinject.PanicAt(site.node, site.cycle))
				_, err := guard.New(m, guard.Options{}).Run(1 << 40)
				var ce *guard.CrashError
				if !errors.As(err, &ce) || ce.Node != site.node || ce.Cycle != site.cycle {
					t.Fatalf("site %d/%d: got %v", site.node, site.cycle, err)
				}
			})
		}
	}
}
