// The determinism-matrix verifier: one generated scenario, every
// engine, bit-identical results or a named seed.

package wgen

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/trace"
)

// mode is one engine configuration of the verification matrix. The
// options are explicit (not the package defaults the engine_test helpers
// mutate), so Verify is safe to call from anywhere — tests, mbench,
// msim — without touching global state.
type mode struct {
	name string
	opts core.Options
}

// matrixModes spans the in-process engines: the reference per-cycle
// loop, the event engine, and the parallel engine at two worker/window
// shapes (rebalancing included, since it must never affect results).
var matrixModes = [...]mode{
	{"naive", core.Options{NaiveEngine: true}},
	{"event", core.Options{}},
	{"parallel2", core.Options{Workers: 2, RebalanceEvery: -1}},
	{"parallel3-rebal8", core.Options{Workers: 3, RebalanceEvery: 8}},
}

// Modes reports the in-process engine count of the matrix, for
// harness banners (cmd/mbench -gen).
func Modes() int { return len(matrixModes) }

// fingerprint renders everything the determinism contract covers: phase
// cycle counts, check counts, machine statistics, the final machine
// digest (per sweep point too), and the full trace timeline. Two
// engines agree iff their fingerprints are equal strings.
func fingerprint(res *core.ScenarioResult, events []trace.Event) string {
	var b strings.Builder
	for _, ph := range res.Phases {
		fmt.Fprintf(&b, "phase %s=%d\n", ph.Name, ph.Cycles)
	}
	fmt.Fprintf(&b, "total=%d checks=%d\n", res.TotalCycles, res.Checks)
	fmt.Fprintf(&b, "stats=%+v\n", res.Stats)
	fmt.Fprintf(&b, "digest=%s\n", res.Digest)
	for _, pt := range res.Points {
		fmt.Fprintf(&b, "point %s cycles=%d checks=%d digest=%s\n",
			pt.Name, pt.TotalCycles, pt.Checks, pt.Digest)
	}
	b.WriteString(trace.Timeline(events))
	return b.String()
}

// seedErr wraps a failure with the reproduction recipe. Every Verify
// failure path goes through this, so a red CI line always names the
// seed and the one command that replays it.
func seedErr(seed uint64, format string, args ...interface{}) error {
	return fmt.Errorf("seed %d (repro: msim -gen-seed %d): %s",
		seed, seed, fmt.Sprintf(format, args...))
}

// Verify generates seed's scenario and runs it under every in-process
// engine, requiring bit-identical fingerprints (digests, stats, phase
// cycles, trace timelines). Scenarios without a sweep additionally run
// on the distributed engine for one seed in eight — dist is an order of
// magnitude slower per scenario, and a subsample is enough to keep the
// cross-process leg honest. Any failure names the seed and the
// `msim -gen-seed` invocation that reproduces it.
func Verify(seed uint64) error {
	name, src := Source(seed)
	sc, err := core.ScenarioFromDSL(name+".wl", src)
	if err != nil {
		// The generator must only emit compilable scenarios; a compile
		// error is a wgen bug, not an engine bug.
		return seedErr(seed, "generated scenario does not compile (wgen bug): %v\n--- source ---\n%s", err, src)
	}

	var ref string
	for i, m := range matrixModes {
		res, s, err := sc.RunSim(m.opts)
		if err != nil {
			return seedErr(seed, "%s engine: %v", m.name, err)
		}
		fp := fingerprint(res, s.Recorder.Events)
		if i == 0 {
			ref = fp
			continue
		}
		if fp != ref {
			return seedErr(seed, "%s engine diverged from %s:\n%s",
				m.name, matrixModes[0].name, diffLines(ref, fp))
		}
	}

	// Distributed subsample: the dist hub forces its own engine and
	// cannot follow sweep forks, so only plain multi-node scenarios
	// qualify. Compare through the same fingerprint — the dist digest
	// is the same sha256 over the same snapshot stream.
	if sc.Plan.Sweep == nil && sc.Plan.Dims[0]*sc.Plan.Dims[1]*sc.Plan.Dims[2] >= 2 && seed%8 == 0 {
		rr, s, err := dist.RunScenario(sc, core.Options{}, dist.Config{
			Shards:   2,
			Launcher: dist.LocalLauncher{},
		})
		if err != nil {
			return seedErr(seed, "dist engine: %v", err)
		}
		rr.ScenarioResult.Digest = rr.Digest
		if fp := fingerprint(rr.ScenarioResult, s.Recorder.Events); fp != ref {
			return seedErr(seed, "dist engine diverged from %s:\n%s",
				matrixModes[0].name, diffLines(ref, fp))
		}
	}
	return nil
}

// diffLines renders the first divergent line of two fingerprints, with
// enough context to see what kind of state went different — digests
// alone say "something", the first differing line says "what".
func diffLines(ref, got string) string {
	rl, gl := strings.Split(ref, "\n"), strings.Split(got, "\n")
	n := len(rl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if rl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  ref: %s\n  got: %s", i+1, rl[i], gl[i])
		}
	}
	return fmt.Sprintf("lengths differ: ref %d lines, got %d lines", len(rl), len(gl))
}
