package wgen

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSourceDeterministic pins the generator's core contract: a seed
// names exactly one scenario, byte for byte, and distinct seeds name
// distinct scenarios.
func TestSourceDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		n1, s1 := Source(seed)
		n2, s2 := Source(seed)
		if n1 != n2 || s1 != s2 {
			t.Fatalf("seed %d generated two different scenarios", seed)
		}
	}
	_, a := Source(1)
	_, b := Source(2)
	if a == b {
		t.Fatal("seeds 1 and 2 generated identical scenarios")
	}
}

// TestSourceCompiles requires every generated scenario to compile: the
// generator only emits values inside the DSL's validated ranges, so a
// compile error is a wgen bug regardless of seed.
func TestSourceCompiles(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 50
	}
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		name, src := Source(seed)
		if _, err := core.ScenarioFromDSL(name+".wl", src); err != nil {
			t.Errorf("seed %d does not compile: %v\n--- source ---\n%s", seed, err, src)
		}
	}
}

// TestSourceVariety checks the generator actually exercises the feature
// space: over a window of seeds, every leg kind, the sweep form, the
// caching mode, multi-leg scenarios, and multi-node meshes all appear.
func TestSourceVariety(t *testing.T) {
	var sweeps, grants, exchanges, loopsyncs, caching, multiLeg, multiNode int
	for seed := uint64(0); seed < 200; seed++ {
		_, src := Source(seed)
		if strings.Contains(src, "sweep P") {
			sweeps++
		}
		if strings.Contains(src, "grant ") {
			grants++
		}
		if strings.Contains(src, "exchange msgs=") {
			exchanges++
		}
		if strings.Contains(src, "loopsync hthreads=") {
			loopsyncs++
		}
		if strings.Contains(src, "caching on") {
			caching++
		}
		if strings.Count(src, "phase ") > 1 {
			multiLeg++
		}
		if !strings.Contains(src, "mesh 1 1 1") {
			multiNode++
		}
	}
	for _, c := range []struct {
		what string
		n    int
	}{
		{"sweep scenarios", sweeps},
		{"guarded-pointer legs", grants},
		{"exchange legs", exchanges},
		{"loopsync legs", loopsyncs},
		{"caching scenarios", caching},
		{"multi-leg scenarios", multiLeg},
		{"multi-node meshes", multiNode},
	} {
		if c.n == 0 {
			t.Errorf("no %s in 200 seeds — the generator lost a feature", c.what)
		}
	}
}

// TestVerifySeeds runs the full determinism matrix over a window of
// seeds — the in-test twin of the `make gen` CI leg (mbench -gen runs a
// larger window). Any failure names the seed for `msim -gen-seed`.
func TestVerifySeeds(t *testing.T) {
	seeds := 16
	if testing.Short() {
		seeds = 4
	}
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		if err := Verify(seed); err != nil {
			t.Error(err)
		}
	}
}
