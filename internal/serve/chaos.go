package serve

// Chaos wiring: the server can inject faults into admitted sessions
// (the -chaos flag, mbench's -serve soak) so the recovery paths run in
// CI instead of waiting for a real crash. Selection and placement are
// deterministic functions of (seed, admission sequence number), so a
// chaos run is reproducible from its flag string alone. Probes are
// installed only on a session's first attempt from a fresh start —
// retries and checkpoint resumes run clean, which is what makes the
// recovery converge and lets the final state be compared bit-for-bit
// against a chaos-free control run.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultinject"
)

// Chaos configures deterministic fault injection for admitted sessions.
type Chaos struct {
	Seed       uint64        // derivation seed
	PanicEvery int           // every Nth admission panics mid-run (0 = never)
	StallEvery int           // every Nth admission stalls past its deadline (0 = never)
	StallDelay time.Duration // per-step stall length; must exceed the session deadline to trip it
	MaxCycle   int64         // fault cycles drawn from [1, MaxCycle]
}

// ParseChaos parses a -chaos flag value: comma-separated key=value pairs
// seed=N, panic=N, stall=N, delay=DUR, maxcycle=N. Example:
// "seed=7,panic=3,stall=5,delay=2s,maxcycle=4096".
func ParseChaos(s string) (*Chaos, error) {
	c := &Chaos{Seed: 1, StallDelay: 2 * time.Second, MaxCycle: 4096}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseUint(v, 0, 64)
		case "panic":
			c.PanicEvery, err = strconv.Atoi(v)
		case "stall":
			c.StallEvery, err = strconv.Atoi(v)
		case "delay":
			c.StallDelay, err = time.ParseDuration(v)
		case "maxcycle":
			c.MaxCycle, err = strconv.ParseInt(v, 0, 64)
		default:
			return nil, fmt.Errorf("chaos: unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: %s: %v", k, err)
		}
	}
	if c.PanicEvery < 0 || c.StallEvery < 0 || c.MaxCycle < 1 || c.StallDelay < 0 {
		return nil, fmt.Errorf("chaos: negative or zero parameter")
	}
	return c, nil
}

// splitmix64 is the same full-period mixer faultinject.Corrupter uses:
// deterministic, dependency-free, good enough to spread fault sites.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// probe derives the fault (if any) for admission number seq of a
// nodes-node session. It returns a machine fault probe and a description
// for logs, or (nil, ""). A panic and a stall landing on the same seq is
// resolved panic-wins, so every selected session gets exactly one fault.
func (c *Chaos) probe(seq uint64, nodes int) (faultinject.Probe, string) {
	if c == nil || nodes < 1 {
		return nil, ""
	}
	h := splitmix64(c.Seed ^ (seq * 0x9e3779b97f4a7c15))
	node := int(h % uint64(nodes))
	cycle := 1 + int64(splitmix64(h)%uint64(c.MaxCycle))
	if c.PanicEvery > 0 && seq%uint64(c.PanicEvery) == 0 {
		return panicFrom(node, cycle), fmt.Sprintf("panic at node %d from cycle %d", node, cycle)
	}
	if c.StallEvery > 0 && seq%uint64(c.StallEvery) == 0 {
		return faultinject.StallAt(node, cycle, c.StallDelay),
			fmt.Sprintf("stall %v at node %d from cycle %d", c.StallDelay, node, cycle)
	}
	return nil, ""
}

// panicFrom panics the first time node steps any cycle >= from. (Unlike
// faultinject.PanicAt's exact-cycle match, this fires even if the
// event-driven engine fast-forwards over the drawn cycle while the node
// idles.) The unsynchronized once-flag is safe: a given node is stepped
// by one goroutine at a time under every engine.
func panicFrom(node int, from int64) faultinject.Probe {
	fired := false
	return func(n int, c int64) {
		if n == node && c >= from && !fired {
			fired = true
			panic(&faultinject.InjectedPanic{Node: n, Cycle: c})
		}
	}
}
