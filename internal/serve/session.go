// Package serve is the msimd session service: it accepts .wl scenario
// submissions over HTTP, multiplexes them across a supervised worker
// pool, and makes the failure containment built in PR 6 operational —
// every session runs under guard.Supervisor with mandatory wall/cycle
// budgets, is checkpointed to a spool at deterministic run-slice
// boundaries, and, when it crashes or stalls transiently, is retried
// from its latest checkpoint with capped exponential backoff, resuming
// bit-identically to a run that was never interrupted (DESIGN.md "The
// simulation service").
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
)

// State is a session's lifecycle state. Transitions:
//
//	queued ──▶ running ──▶ done
//	   ▲          │ ├────▶ failed
//	   │          │ ├────▶ canceled
//	(boot adopt)  │ └────▶ suspended ─(restart)─▶ queued
//	   │          ▼
//	   └──── retrying (transient failure; back to running after backoff)
//
// done, failed, and canceled are terminal. suspended means the server
// drained with the session in flight: its checkpoint stays in the spool
// and the next boot re-adopts it as queued.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateRetrying  State = "retrying"
	StateSuspended State = "suspended"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final for this server process.
// (suspended is final here but resumes after a restart.)
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Failure classes, reported on failed (and retrying) sessions. The first
// three are transient — the supervisor contained a fault that a retry
// from the latest checkpoint can get past — and are retried up to the
// server's retry cap. The rest are deterministic properties of the
// scenario itself; retrying would reproduce them exactly.
const (
	FailCrash        = "crash"         // contained panic (*guard.CrashError); transient
	FailStallTimeout = "stall-timeout" // wall-clock watchdog stop; transient
	FailStallHang    = "stall-hang"    // watchdog stop ignored past grace; transient
	FailBudget       = "budget"        // session cycle budget exhausted; permanent
	FailScenario     = "scenario"      // expect/check/staging error; permanent
)

// transientFailure reports whether a failure class is worth retrying.
func transientFailure(class string) bool {
	return class == FailCrash || class == FailStallTimeout || class == FailStallHang
}

// classifyFailure maps a supervised attempt error to a failure class.
func classifyFailure(err error) string {
	var ce *guard.CrashError
	if errors.As(err, &ce) {
		return FailCrash
	}
	var se *guard.StallError
	if errors.As(err, &se) {
		switch se.Kind {
		case guard.StallTimeout:
			return FailStallTimeout
		case guard.StallHang:
			return FailStallHang
		case guard.StallBudget:
			return FailBudget
		}
	}
	return FailScenario
}

// Session is one submitted scenario and its execution state. All mutable
// fields are guarded by mu; the identity fields before it are fixed at
// admission.
type Session struct {
	ID     string
	Name   string // scenario name (diagnostics, list views)
	seq    uint64 // admission sequence number (chaos keying)
	source string // the .wl text, verbatim (respooled in checkpoints)
	sc     *core.Scenario

	// Admission-enforced budgets: every session has both.
	wall        time.Duration // per-attempt wall-clock deadline
	cycleBudget int64         // total simulated-cycle budget

	mu       sync.Mutex
	state    State
	retries  int           // transient failures recovered so far
	attempts int           // supervised attempts started (including the first)
	backoff  time.Duration // current retry backoff; nonzero only while retrying
	canceled bool          // cancellation requested (observed at quantum heads)
	sim      *core.Sim     // live machine while running (interrupt target)

	phases             []core.PhaseResult // completed phases, live-updated
	checks             int
	result             *core.ScenarioResult // set when done
	digest             string               // sha256 of the final machine snapshot
	failure, failClass string
	dumpPath           string // last crash dump, if any

	notify chan struct{} // closed and swapped on every visible change
	done   chan struct{} // closed on reaching a Terminal state
}

func newSession(id string, seq uint64, name, source string, sc *core.Scenario,
	wall time.Duration, cycleBudget int64) *Session {
	return &Session{
		ID: id, Name: name, seq: seq, source: source, sc: sc,
		wall: wall, cycleBudget: cycleBudget,
		state:  StateQueued,
		notify: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// update applies fn under the lock and wakes every watcher.
func (s *Session) update(fn func()) {
	s.mu.Lock()
	fn()
	close(s.notify)
	s.notify = make(chan struct{})
	if s.state.Terminal() {
		select {
		case <-s.done:
		default:
			close(s.done)
		}
	}
	s.mu.Unlock()
}

// Cancel requests cancellation. Queued and retrying sessions observe it
// before their next quantum; a running session's machine is stopped at
// its next run-loop head. Terminal sessions are unaffected. It reports
// whether the request was accepted (false once terminal).
func (s *Session) Cancel() bool {
	var accepted bool
	s.update(func() {
		if s.state.Terminal() {
			return
		}
		accepted = true
		s.canceled = true
		if s.sim != nil {
			s.sim.M.RequestStop()
		}
	})
	return accepted
}

// interrupt stops the session's machine at its next run-loop head (drain).
func (s *Session) interrupt() {
	s.mu.Lock()
	if s.sim != nil {
		s.sim.M.RequestStop()
	}
	s.mu.Unlock()
}

func (s *Session) isCanceled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.canceled
}

// Done returns a channel closed when the session reaches a terminal
// state (done, failed, or canceled — not suspended).
func (s *Session) Done() <-chan struct{} { return s.done }

// attach/detach bracket an attempt: while attached, Cancel and drain can
// stop the machine mid-quantum.
func (s *Session) attach(sim *core.Sim) {
	s.update(func() {
		s.state = StateRunning
		s.backoff = 0
		s.sim = sim
		if s.canceled {
			sim.M.RequestStop()
		}
	})
}

func (s *Session) detach() {
	s.mu.Lock()
	s.sim = nil
	s.mu.Unlock()
}

// noteProgress publishes the run's completed phases and checks.
func (s *Session) noteProgress(run *core.ScenarioRun) {
	s.update(func() {
		s.phases = append(s.phases[:0], run.Phases()...)
		s.checks = run.Checks()
	})
}

// Info is the JSON view of a session.
type Info struct {
	ID       string  `json:"id"`
	Name     string  `json:"name"`
	State    State   `json:"state"`
	Retries  int     `json:"retries"`
	Attempts int     `json:"attempts"`          // supervised attempts started
	Backoff  string  `json:"backoff,omitempty"` // current retry backoff, while retrying
	Phases   []Phase `json:"phases,omitempty"`
	Checks   int     `json:"checks"`

	// Set on done:
	TotalCycles int64  `json:"total_cycles,omitempty"`
	Digest      string `json:"digest,omitempty"` // sha256 of the final machine snapshot

	// Set on failed (class also set while retrying):
	Failure      string `json:"failure,omitempty"`
	FailureClass string `json:"failure_class,omitempty"`
	DumpPath     string `json:"dump_path,omitempty"`
}

// Phase is the JSON view of one completed run phase.
type Phase struct {
	Name   string `json:"name"`
	Cycles int64  `json:"cycles"`
}

// Info snapshots the session for API responses.
func (s *Session) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infoLocked()
}

func (s *Session) infoLocked() Info {
	in := Info{
		ID: s.ID, Name: s.Name, State: s.state, Retries: s.retries,
		Attempts: s.attempts,
		Checks:   s.checks, Digest: s.digest,
		Failure: s.failure, FailureClass: s.failClass, DumpPath: s.dumpPath,
	}
	if s.state == StateRetrying && s.backoff > 0 {
		in.Backoff = s.backoff.String()
	}
	for _, p := range s.phases {
		in.Phases = append(in.Phases, Phase{Name: p.Name, Cycles: p.Cycles})
	}
	if s.result != nil {
		in.TotalCycles = s.result.TotalCycles
	}
	return in
}

// watch returns a consistent snapshot and a channel that is closed on
// the next visible change — the streaming endpoint's poll primitive.
func (s *Session) watch() (Info, <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infoLocked(), s.notify
}

// stateDigest hex-encodes the sha256 of a final machine snapshot; the
// digest is the service's bit-identity witness (two sessions simulated
// the same thing iff their digests match).
func stateDigest(snapshot []byte) string {
	sum := sha256.Sum256(snapshot)
	return hex.EncodeToString(sum[:])
}

// sessionError decorates a terminal failure for logs.
func sessionError(s *Session, class string, err error) string {
	return fmt.Sprintf("session %s (%s): %s: %v", s.ID, s.Name, class, err)
}
