package serve

// The checkpoint spool: every session's recovery state lives in
// <spool>/<id>.ckpt, written atomically and durably (snap.WriteFileAtomic
// fsyncs the file and its directory) so it survives power loss, not just
// process death. A checkpoint is an envelope — identity, budgets, the
// verbatim .wl source, the resume position from core.ScenarioRun.Pos,
// results accumulated so far — plus, once the session has advanced, a
// machine snapshot taken at the same quantum boundary. An admission
// checkpoint (written before the session is queued) has no machine: it
// recovers by running from the start, which is the same deterministic
// execution. Crash dumps (<id>.crash) sit alongside for forensics; they
// are never used for recovery — recovery always resumes from a slice
// boundary so the replayed bound sequence matches an uninterrupted run.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/snap"
)

const (
	ckptMagic   = "msimdCk1" // 8 bytes
	ckptVersion = 1
	ckptTrailer = 0x6d73696d64436b31 // "msimdCk1" as a word
)

// checkpoint is a session's durable recovery state.
type checkpoint struct {
	ID          string
	Name        string
	Source      string // verbatim .wl text; re-parsed on adoption
	WallNanos   int64
	CycleBudget int64
	Retries     int

	// Resume position (core.ScenarioRun.Seek arguments).
	NextStep int
	PhaseRan int64
	Checks   int
	Phases   []core.PhaseResult

	// Machine snapshot at the matching quantum boundary; empty for an
	// admission checkpoint (resume = run from the start).
	Machine []byte
}

// ckptPath and crashPath name a session's spool files.
func ckptPath(spool, id string) string  { return filepath.Join(spool, id+".ckpt") }
func crashPath(spool, id string) string { return filepath.Join(spool, id+".crash") }

// writeCheckpoint spools ck atomically and durably.
func writeCheckpoint(path string, ck *checkpoint) error {
	return snap.WriteFileAtomic(path, func(wr io.Writer) error {
		w := snap.NewWriter(wr)
		io.WriteString(wr, ckptMagic)
		w.Int(ckptVersion)
		w.String(ck.ID)
		w.String(ck.Name)
		w.String(ck.Source)
		w.I64(ck.WallNanos)
		w.I64(ck.CycleBudget)
		w.Int(ck.Retries)
		w.Int(ck.NextStep)
		w.I64(ck.PhaseRan)
		w.Int(ck.Checks)
		w.Int(len(ck.Phases))
		for _, p := range ck.Phases {
			w.String(p.Name)
			w.I64(p.Cycles)
		}
		w.Bytes(ck.Machine)
		w.U64(ckptTrailer)
		return w.Err()
	})
}

// readCheckpoint loads and validates a spooled checkpoint.
func readCheckpoint(path string) (*checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < len(ckptMagic) || string(b[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("%s: not an msimd checkpoint", path)
	}
	r := snap.NewReader(bytes.NewReader(b[len(ckptMagic):]))
	r.Limit(int64(len(b) - len(ckptMagic)))
	if v := r.Int(); v != ckptVersion {
		return nil, fmt.Errorf("%s: checkpoint version %d, want %d", path, v, ckptVersion)
	}
	ck := &checkpoint{
		ID:          r.String(1 << 10),
		Name:        r.String(1 << 16),
		Source:      r.String(maxSubmitBytes),
		WallNanos:   r.I64(),
		CycleBudget: r.I64(),
		Retries:     r.Int(),
		NextStep:    r.Int(),
		PhaseRan:    r.I64(),
		Checks:      r.Int(),
	}
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("%s: implausible phase count %d", path, n)
	}
	for i := 0; i < n; i++ {
		ck.Phases = append(ck.Phases, core.PhaseResult{Name: r.String(1 << 16), Cycles: r.I64()})
	}
	ck.Machine = r.Bytes(1 << 32)
	if t := r.U64(); r.Err() == nil && t != ckptTrailer {
		return nil, fmt.Errorf("%s: bad checkpoint trailer %#x", path, t)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return ck, nil
}

// listCheckpoints returns the session IDs with a checkpoint in spool, in
// name order (which is admission order for server-allocated IDs).
func listCheckpoints(spool string) ([]string, error) {
	ents, err := os.ReadDir(spool)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		if name, ok := strings.CutSuffix(e.Name(), ".ckpt"); ok && !e.IsDir() {
			ids = append(ids, name)
		}
	}
	return ids, nil
}

// removeSpooled deletes a session's spool files (checkpoint and crash
// dump) once it reaches a state that no longer needs them.
func removeSpooled(spool, id string) {
	os.Remove(ckptPath(spool, id))
	os.Remove(crashPath(spool, id))
}
