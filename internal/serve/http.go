package serve

// The HTTP/JSON API (documented for users in docs/msimd.md):
//
//	POST   /api/v1/sessions            submit a scenario   202 | 400/422/429/503
//	GET    /api/v1/sessions            list sessions       200
//	GET    /api/v1/sessions/{id}       session info        200 | 404
//	GET    /api/v1/sessions/{id}/wait  block until terminal 200 | 404
//	GET    /api/v1/sessions/{id}/stream NDJSON event stream 200 | 404
//	DELETE /api/v1/sessions/{id}       cancel              200 | 404 | 409
//	GET    /api/v1/stats               server counters     200
//	GET    /healthz                    liveness + drain    200 | 503
//
// Submission body: JSON {"name": "...", "source": "<.wl text>"}, or the
// raw .wl text with any non-JSON Content-Type (name from ?name=).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Handler returns the server's HTTP API.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/sessions", sv.handleSubmit)
	mux.HandleFunc("GET /api/v1/sessions", sv.handleList)
	mux.HandleFunc("GET /api/v1/sessions/{id}", sv.handleGet)
	mux.HandleFunc("GET /api/v1/sessions/{id}/wait", sv.handleWait)
	mux.HandleFunc("GET /api/v1/sessions/{id}/stream", sv.handleStream)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}", sv.handleCancel)
	mux.HandleFunc("GET /api/v1/stats", sv.handleStats)
	mux.HandleFunc("GET /healthz", sv.handleHealth)
	return mux
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, detail string) {
	writeJSON(w, status, apiError{Error: detail, Code: code})
}

// submitRequest is the JSON submission body.
type submitRequest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// maxSubmitBytes bounds a submission body; .wl scenarios are small, and
// an unbounded read is a trivial way to hurt a shared server.
const maxSubmitBytes = 1 << 20

func (sv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "body", err.Error())
		return
	}
	if len(body) > maxSubmitBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "body",
			fmt.Sprintf("submission exceeds %d bytes", maxSubmitBytes))
		return
	}
	req := submitRequest{Name: r.URL.Query().Get("name")}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "body", fmt.Sprintf("request body: %v", err))
			return
		}
	} else {
		req.Source = string(body)
	}
	if strings.TrimSpace(req.Source) == "" {
		writeError(w, http.StatusBadRequest, "body", "empty scenario source")
		return
	}

	s, err := sv.Submit(req.Name, req.Source)
	if err != nil {
		var rej *Rejection
		if errors.As(err, &rej) {
			status := map[string]int{
				"parse":    http.StatusBadRequest,
				"over-cap": http.StatusUnprocessableEntity,
				"busy":     http.StatusTooManyRequests,
				"draining": http.StatusServiceUnavailable,
			}[rej.Code]
			if status == 0 {
				status = http.StatusInternalServerError
			}
			if rej.RetryAfter > 0 {
				w.Header().Set("Retry-After",
					fmt.Sprintf("%d", int((rej.RetryAfter+time.Second-1)/time.Second)))
			}
			writeError(w, status, rej.Code, rej.Detail)
			return
		}
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, s.Info())
}

func (sv *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := sv.List()
	out := make([]Info, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.Info())
	}
	writeJSON(w, http.StatusOK, out)
}

func (sv *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	s, ok := sv.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not-found",
			fmt.Sprintf("no session %q", r.PathValue("id")))
	}
	return s, ok
}

func (sv *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if s, ok := sv.session(w, r); ok {
		writeJSON(w, http.StatusOK, s.Info())
	}
}

// handleWait blocks until the session is terminal (or ?timeout= expires,
// or the client goes away) and returns its info. Suspended sessions
// respond immediately: they will not progress in this process.
func (sv *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.session(w, r)
	if !ok {
		return
	}
	var timeoutCh <-chan time.Time
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "timeout", err.Error())
			return
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timeoutCh = t.C
	}
	for {
		info, changed := s.watch()
		if info.State.Terminal() || info.State == StateSuspended {
			writeJSON(w, http.StatusOK, info)
			return
		}
		select {
		case <-changed:
		case <-s.Done():
		case <-timeoutCh:
			writeJSON(w, http.StatusOK, info)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// streamEvent is one NDJSON line of the streaming endpoint.
type streamEvent struct {
	Event   string `json:"event"` // "state", "phase", "end"
	State   State  `json:"state,omitempty"`
	Phase   *Phase `json:"phase,omitempty"`
	Session *Info  `json:"session,omitempty"` // on "end"
}

// handleStream emits session progress as NDJSON: a "state" event per
// lifecycle transition, a "phase" event per completed run phase, and a
// final "end" event carrying the full session info.
func (sv *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.session(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev streamEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}

	lastState := State("")
	sentPhases := 0
	for {
		info, changed := s.watch()
		if info.State != lastState {
			lastState = info.State
			if !emit(streamEvent{Event: "state", State: info.State}) {
				return
			}
		}
		for sentPhases < len(info.Phases) {
			p := info.Phases[sentPhases]
			sentPhases++
			if !emit(streamEvent{Event: "phase", Phase: &p}) {
				return
			}
		}
		if info.State.Terminal() || info.State == StateSuspended {
			emit(streamEvent{Event: "end", Session: &info})
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (sv *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.session(w, r)
	if !ok {
		return
	}
	if !s.Cancel() {
		writeError(w, http.StatusConflict, "terminal",
			fmt.Sprintf("session %s already %s", s.ID, s.Info().State))
		return
	}
	writeJSON(w, http.StatusOK, s.Info())
}

func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, sv.Stats())
}

func (sv *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if sv.Draining() {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}
