package serve

// The Server: admission control, the supervised worker pool, the
// retry/recovery loop, and graceful drain. Design rules that everything
// here follows:
//
//   - A session never shares mutable state with another: each gets its
//     own machine, its own supervisor, its own spool files. A contained
//     crash poisons only its own machine, which is discarded — recovery
//     always boots a fresh simulator and restores the latest checkpoint.
//   - Recovery is replay from a run-slice boundary. Slice bounds are a
//     pure function of (plan, CheckpointEvery, position), so a resumed
//     session executes the identical machine.Run bound sequence an
//     uninterrupted one would, and finishes bit-identical to it.
//   - Budgets are mandatory and enforced out-of-band: the wall deadline
//     is per attempt (a retry gets a fresh clock; progress persists via
//     checkpoints), the cycle budget is global across attempts (simulated
//     cycles are deterministic, so exhaustion reproduces exactly).
//   - Interrupts (cancel, drain) are observed at quantum heads and, via
//     machine.RequestStop, at run-loop heads mid-quantum. guard.Do wipes
//     pending stop requests at entry, so the flag checks at quantum heads
//     are what make interrupt delivery reliable; the in-flight stop just
//     shortens the current slice.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/machine"
)

// Config parameterizes a Server. The zero value is unusable; Spool is
// required and New applies the documented defaults to everything else.
type Config struct {
	Spool string // checkpoint spool directory (required; created if absent)

	Workers int // concurrent sessions (default: GOMAXPROCS, capped at 8)
	Queue   int // bounded admission queue beyond the running sessions (default 64)

	// Admission caps and defaults. Budgets are mandatory: a scenario
	// without deadline/budget directives gets the defaults; one whose
	// declared budgets exceed the caps is rejected (HTTP 422).
	MaxNodes      int           // mesh-size cap (default 1024, the DSL limit)
	MaxCycles     int64         // cycle-budget cap (default 1e9)
	DefaultCycles int64         // budget when the scenario declares none (default 50e6)
	MaxWall       time.Duration // wall-deadline cap (default 5m)
	DefaultWall   time.Duration // deadline when the scenario declares none (default 1m)

	// Execution.
	CheckpointEvery int64         // run-slice size in cycles; checkpoint cadence (default 4096)
	Retries         int           // max transient-failure retries per session (default 3)
	Backoff         time.Duration // initial retry backoff (default 100ms)
	BackoffCap      time.Duration // backoff ceiling (default 5s)
	Grace           time.Duration // guard hang grace (0 = guard default)
	SimWorkers      int           // per-session engine workers (default 1 = serial)

	Chaos *Chaos               // fault injection (nil = none)
	Logf  func(string, ...any) // event log (nil = silent)
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// withDefaults validates and fills in cfg.
func (c Config) withDefaults() (Config, error) {
	if c.Spool == "" {
		return c, errors.New("serve: Config.Spool is required")
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1024
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 1e9
	}
	if c.DefaultCycles <= 0 {
		c.DefaultCycles = 50e6
	}
	if c.MaxWall <= 0 {
		c.MaxWall = 5 * time.Minute
	}
	if c.DefaultWall <= 0 {
		c.DefaultWall = time.Minute
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 4096
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 5 * time.Second
	}
	if c.SimWorkers == 0 {
		c.SimWorkers = 1
	}
	if c.DefaultCycles > c.MaxCycles || c.DefaultWall > c.MaxWall {
		return c, errors.New("serve: default budgets exceed their caps")
	}
	return c, nil
}

// Rejection is an admission failure. Code selects the HTTP status; see
// the handler table in http.go.
type Rejection struct {
	Code       string // "draining", "parse", "over-cap", "busy"
	Detail     string
	RetryAfter time.Duration // hint for "busy" (429 Retry-After)
}

func (r *Rejection) Error() string { return fmt.Sprintf("%s: %s", r.Code, r.Detail) }

// Stats are the server's monotonic counters plus instantaneous gauges.
type Stats struct {
	Submitted uint64 `json:"submitted"` // sessions accepted via Submit
	Adopted   uint64 `json:"adopted"`   // sessions re-adopted from the spool at boot
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Suspended uint64 `json:"suspended"`
	Retries   uint64 `json:"retries"` // transient failures recovered
	Shed      uint64 `json:"shed"`    // admissions refused with queue full

	// Recovery observability.
	Recovered   uint64 `json:"recovered"`   // sessions done after >= 1 retry
	Restores    uint64 `json:"restores"`    // attempts resumed from a machine checkpoint
	Quarantined uint64 `json:"quarantined"` // unreadable spool checkpoints renamed aside at boot

	Queued   int  `json:"queued"` // gauge: sessions waiting for a worker
	Running  int  `json:"running"`
	Draining bool `json:"draining"`
}

// Server is the msimd session service. Create with New, serve HTTP via
// Handler, stop with Drain.
type Server struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string // admission order, for List
	queue    chan *Session
	draining bool
	seq      uint64
	stats    Stats

	wg sync.WaitGroup
}

// New builds a Server: it creates the spool directory if needed, adopts
// every checkpointed session left by a previous process, and starts the
// worker pool.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Spool, 0o755); err != nil {
		return nil, err
	}
	sv := &Server{cfg: cfg, sessions: make(map[string]*Session)}
	adopted, err := sv.adopt()
	if err != nil {
		return nil, err
	}
	sv.queue = make(chan *Session, cfg.Queue+len(adopted))
	for _, s := range adopted {
		sv.register(s)
		sv.queue <- s
		sv.stats.Adopted++
	}
	for i := 0; i < cfg.Workers; i++ {
		sv.wg.Add(1)
		go sv.worker()
	}
	return sv, nil
}

// adopt loads every spooled checkpoint into a queued session. A
// checkpoint that no longer parses is renamed aside (never deleted — it
// may be forensic evidence) and skipped.
func (sv *Server) adopt() ([]*Session, error) {
	ids, err := listCheckpoints(sv.cfg.Spool)
	if err != nil {
		return nil, err
	}
	var adopted []*Session
	for _, id := range ids {
		path := ckptPath(sv.cfg.Spool, id)
		ck, err := readCheckpoint(path)
		if err == nil && ck.ID != id {
			err = fmt.Errorf("checkpoint identifies as %q", ck.ID)
		}
		var sc *core.Scenario
		if err == nil {
			sc, err = core.ScenarioFromDSL(ck.Name, ck.Source)
		}
		if err != nil {
			// Quarantine, never delete: a torn or corrupt checkpoint is
			// forensic evidence of the crash that produced it. (adopt runs
			// single-threaded inside New, before the pool starts.)
			sv.cfg.logf("spool: quarantining %s: %v", path, err)
			os.Rename(path, path+".bad")
			sv.stats.Quarantined++
			continue
		}
		s := newSession(id, 0, ck.Name, ck.Source, sc,
			time.Duration(ck.WallNanos), ck.CycleBudget)
		s.seq = sv.seqFromID(id)
		s.retries = ck.Retries
		s.phases = append(s.phases, ck.Phases...)
		s.checks = ck.Checks
		adopted = append(adopted, s)
		sv.cfg.logf("spool: adopted session %s (%s) at step %d", id, ck.Name, ck.NextStep)
	}
	return adopted, nil
}

// seqFromID recovers the admission sequence number from a
// server-allocated ID ("s%06d"), bumping the allocator past it so new
// IDs never collide with adopted ones. Foreign IDs get a fresh number.
func (sv *Server) seqFromID(id string) uint64 {
	var n uint64
	if _, err := fmt.Sscanf(id, "s%06d", &n); err == nil && fmt.Sprintf("s%06d", n) == id {
		if n > sv.seq {
			sv.seq = n
		}
		return n
	}
	sv.seq++
	return sv.seq
}

func (sv *Server) register(s *Session) {
	sv.sessions[s.ID] = s
	sv.order = append(sv.order, s.ID)
}

// Submit admits a scenario: parse, enforce budgets and caps, write the
// admission checkpoint, enqueue. All rejections are *Rejection errors.
func (sv *Server) Submit(name, source string) (*Session, error) {
	if name == "" {
		name = "scenario.wl"
	}
	sc, err := core.ScenarioFromDSL(name, source)
	if err != nil {
		return nil, &Rejection{Code: "parse", Detail: err.Error()}
	}
	if sc.Plan.Sweep != nil {
		// Sweeps fork machines mid-run, which the session checkpoint
		// format has no position encoding for; run them under msim.
		return nil, &Rejection{Code: "unsupported",
			Detail: "sweep scenarios are not supported by the session service"}
	}
	nodes := sc.Plan.Dims[0] * sc.Plan.Dims[1] * sc.Plan.Dims[2]
	if nodes > sv.cfg.MaxNodes {
		return nil, &Rejection{Code: "over-cap",
			Detail: fmt.Sprintf("mesh has %d nodes, server cap is %d", nodes, sv.cfg.MaxNodes)}
	}
	wall := sc.Plan.Deadline
	if wall == 0 {
		wall = sv.cfg.DefaultWall
	}
	if wall > sv.cfg.MaxWall {
		return nil, &Rejection{Code: "over-cap",
			Detail: fmt.Sprintf("deadline %v exceeds server cap %v", wall, sv.cfg.MaxWall)}
	}
	budget := sc.Plan.CycleBudget
	if budget == 0 {
		budget = sv.cfg.DefaultCycles
	}
	if budget > sv.cfg.MaxCycles {
		return nil, &Rejection{Code: "over-cap",
			Detail: fmt.Sprintf("cycle budget %d exceeds server cap %d", budget, sv.cfg.MaxCycles)}
	}

	sv.mu.Lock()
	if sv.draining {
		sv.mu.Unlock()
		return nil, &Rejection{Code: "draining", Detail: "server is draining; not accepting sessions"}
	}
	sv.seq++
	s := newSession(fmt.Sprintf("s%06d", sv.seq), sv.seq, name, source, sc, wall, budget)
	// Spool the admission checkpoint before committing the slot: once
	// Submit returns, the session survives a server crash.
	err = writeCheckpoint(ckptPath(sv.cfg.Spool, s.ID), &checkpoint{
		ID: s.ID, Name: name, Source: source,
		WallNanos: int64(wall), CycleBudget: budget,
	})
	if err != nil {
		sv.mu.Unlock()
		return nil, fmt.Errorf("serve: spooling admission checkpoint: %v", err)
	}
	select {
	case sv.queue <- s:
	default:
		sv.stats.Shed++
		sv.mu.Unlock()
		os.Remove(ckptPath(sv.cfg.Spool, s.ID))
		return nil, &Rejection{Code: "busy",
			Detail:     fmt.Sprintf("admission queue full (%d waiting)", cap(sv.queue)),
			RetryAfter: time.Second}
	}
	sv.register(s)
	sv.stats.Submitted++
	sv.mu.Unlock()
	return s, nil
}

// Get returns a session by ID.
func (sv *Server) Get(id string) (*Session, bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	s, ok := sv.sessions[id]
	return s, ok
}

// List returns all sessions in admission order.
func (sv *Server) List() []*Session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make([]*Session, 0, len(sv.order))
	for _, id := range sv.order {
		out = append(out, sv.sessions[id])
	}
	return out
}

// Stats snapshots the server counters.
func (sv *Server) Stats() Stats {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	st := sv.stats
	st.Queued = len(sv.queue)
	st.Draining = sv.draining
	running := 0
	for _, s := range sv.sessions {
		s.mu.Lock()
		if s.state == StateRunning || s.state == StateRetrying {
			running++
		}
		s.mu.Unlock()
	}
	st.Running = running
	return st
}

// Draining reports whether a drain is in progress or complete.
func (sv *Server) Draining() bool {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.draining
}

// count bumps a stats counter under the server lock.
func (sv *Server) count(f func(*Stats)) {
	sv.mu.Lock()
	f(&sv.stats)
	sv.mu.Unlock()
}

// Drain stops the server gracefully: new admissions are refused, every
// running session is stopped at its next run-loop head and suspended
// with its latest boundary checkpoint left in the spool, queued sessions
// are suspended untouched (their admission checkpoints already spooled),
// and the worker pool exits. Idempotent; blocks until the pool is idle.
// A subsequent boot with the same spool re-adopts everything suspended.
func (sv *Server) Drain() {
	sv.mu.Lock()
	if sv.draining {
		sv.mu.Unlock()
		sv.wg.Wait()
		return
	}
	sv.draining = true
	for _, s := range sv.sessions {
		s.interrupt()
	}
	close(sv.queue)
	sv.mu.Unlock()
	sv.wg.Wait()
}

// worker drains the admission queue until Drain closes it.
func (sv *Server) worker() {
	defer sv.wg.Done()
	for s := range sv.queue {
		sv.runSession(s)
	}
}

// attemptOutcome says what runAttempt's caller should do next.
type attemptOutcome int

const (
	attemptDone attemptOutcome = iota
	attemptFailed
	attemptCanceled
	attemptSuspended
	attemptRetry
)

// runSession drives one session to a terminal (or suspended) state:
// attempts with retry-from-checkpoint and capped exponential backoff in
// between.
func (sv *Server) runSession(s *Session) {
	for {
		switch sv.runAttempt(s) {
		case attemptDone:
			sv.count(func(st *Stats) {
				st.Done++
				if s.retries > 0 {
					st.Recovered++
				}
			})
			return
		case attemptFailed:
			sv.count(func(st *Stats) { st.Failed++ })
			return
		case attemptCanceled:
			removeSpooled(sv.cfg.Spool, s.ID)
			sv.count(func(st *Stats) { st.Canceled++ })
			return
		case attemptSuspended:
			sv.count(func(st *Stats) { st.Suspended++ })
			return
		case attemptRetry:
			sv.count(func(st *Stats) { st.Retries++ })
			backoff := sv.cfg.Backoff << uint(s.retries)
			if backoff > sv.cfg.BackoffCap || backoff <= 0 {
				backoff = sv.cfg.BackoffCap
			}
			s.update(func() {
				s.retries++
				s.state = StateRetrying
				s.backoff = backoff
			})
			sv.cfg.logf("session %s: retry %d/%d in %v (%s)",
				s.ID, s.retries, sv.cfg.Retries, backoff, s.failClass)
			if !sv.sleep(s, backoff) {
				// Interrupted: re-enter runAttempt, whose quantum-head
				// checks will cancel or suspend immediately.
				continue
			}
		}
	}
}

// sleep waits out a backoff, returning early (false) on cancel or drain.
func (sv *Server) sleep(s *Session, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	check := time.NewTicker(10 * time.Millisecond)
	defer check.Stop()
	for {
		select {
		case <-t.C:
			return true
		case <-check.C:
			if s.isCanceled() || sv.Draining() {
				return false
			}
		}
	}
}

// fail finalizes a permanent failure.
func (sv *Server) fail(s *Session, class string, err error) attemptOutcome {
	sv.cfg.logf("%s", sessionError(s, class, err))
	s.update(func() {
		s.state = StateFailed
		s.failure = err.Error()
		s.failClass = class
	})
	// The last checkpoint and crash dump stay in the spool for forensics?
	// No: a failed session is terminal and re-adopting it at next boot
	// would retry a deterministic failure forever. Keep the crash dump,
	// drop the checkpoint.
	os.Remove(ckptPath(sv.cfg.Spool, s.ID))
	return attemptFailed
}

// runAttempt executes one attempt: boot (or restore) a simulator, then
// advance the scenario quantum by quantum under a supervisor, spooling a
// checkpoint at every run-slice boundary.
func (sv *Server) runAttempt(s *Session) attemptOutcome {
	s.update(func() { s.attempts++ })
	// Resume state comes from the spool: either an admission checkpoint
	// (fresh start) or a boundary checkpoint with a machine snapshot.
	ck, err := readCheckpoint(ckptPath(sv.cfg.Spool, s.ID))
	if err != nil {
		// Unreadable mid-flight checkpoint: recover by running from the
		// start — same deterministic execution, just more replay.
		sv.cfg.logf("session %s: checkpoint unreadable (%v); restarting from scratch", s.ID, err)
		ck = &checkpoint{ID: s.ID}
	}

	sim, err := s.sc.NewSim(core.Options{Workers: sv.cfg.SimWorkers})
	if err != nil {
		return sv.fail(s, FailScenario, err)
	}
	closeSim := true
	defer func() {
		s.detach()
		if closeSim {
			sim.M.Close()
		}
	}()

	run := s.sc.NewRun(sim)
	resumed := false
	if len(ck.Machine) > 0 {
		if err := sim.M.Restore(bytes.NewReader(ck.Machine)); err == nil {
			if err := run.Seek(ck.NextStep, ck.PhaseRan, ck.Phases, ck.Checks); err == nil {
				resumed = true
			}
		}
		if resumed {
			sv.count(func(st *Stats) { st.Restores++ })
		}
		if !resumed {
			// Corrupt or incompatible snapshot: fall back to a fresh start.
			sv.cfg.logf("session %s: checkpoint restore failed; restarting from scratch", s.ID)
			sim.M.Close()
			if sim, err = s.sc.NewSim(core.Options{Workers: sv.cfg.SimWorkers}); err != nil {
				closeSim = false
				return sv.fail(s, FailScenario, err)
			}
			run = s.sc.NewRun(sim)
		}
	}

	// Chaos probes go only on a first attempt from a fresh start, so
	// retries converge and drained sessions resume clean.
	if s.retries == 0 && !resumed {
		if probe, desc := sv.cfg.Chaos.probe(s.seq, sim.M.NumNodes()); probe != nil {
			sim.M.SetFaultProbe(probe)
			sv.cfg.logf("session %s: chaos: injected %s", s.ID, desc)
		}
	}

	s.attach(sim)
	deadline := time.Now().Add(s.wall)

	for !run.Done() {
		// Quantum-head interrupt checks. guard.Do clears any pending stop
		// request at entry, so these flags — not the stop flag — are the
		// reliable interrupt signal; RequestStop only shortens a slice.
		if s.isCanceled() {
			s.update(func() { s.state = StateCanceled })
			return attemptCanceled
		}
		if sv.Draining() {
			return sv.suspend(s)
		}
		remWall := time.Until(deadline)
		if remWall <= 0 {
			return sv.transient(s, &guard.StallError{Kind: guard.StallTimeout, Cycle: sim.M.Cycle, Timeout: s.wall}, &closeSim)
		}
		if rem := s.cycleBudget - sim.M.Cycle; rem <= 0 {
			return sv.fail(s, FailBudget,
				fmt.Errorf("cycle budget %d exhausted at cycle %d", s.cycleBudget, sim.M.Cycle))
		}
		slice := sv.cfg.CheckpointEvery
		if rem := s.cycleBudget - sim.M.Cycle; rem < slice {
			slice = rem
		}

		sup := guard.New(sim.M, guard.Options{
			Timeout:  remWall,
			Grace:    sv.cfg.Grace,
			DumpPath: crashPath(sv.cfg.Spool, s.ID),
		})
		var ran bool
		err := sup.Do(func() error {
			var e error
			ran, e = run.Advance(sup, slice)
			return e
		})
		if err != nil {
			// Stop-flag interrupts surface as machine.ErrStopped; map them
			// back to whoever requested the stop.
			if errors.Is(err, machine.ErrStopped) {
				if s.isCanceled() {
					s.update(func() { s.state = StateCanceled })
					return attemptCanceled
				}
				if sv.Draining() {
					return sv.suspend(s)
				}
				// A stray stop with no interrupt pending: treat as a
				// transient stall and recover from the checkpoint.
				err = &guard.StallError{Kind: guard.StallTimeout, Cycle: sim.M.Cycle, Timeout: s.wall}
			}
			class := classifyFailure(err)
			if !transientFailure(class) {
				return sv.fail(s, class, err)
			}
			return sv.transient(s, err, &closeSim)
		}
		if ran {
			// Between cycles at a deterministic slice boundary: publish
			// progress and spool the recovery checkpoint.
			s.noteProgress(run)
			if err := sv.spoolProgress(s, run, sim); err != nil {
				// Durability degraded, availability kept: the session runs
				// on; recovery just replays from the older checkpoint.
				sv.cfg.logf("session %s: checkpoint write failed: %v", s.ID, err)
			}
		}
	}

	// Completed. The digest over the final snapshot is the bit-identity
	// witness chaos runs are compared with.
	var final bytes.Buffer
	if err := sim.M.Save(&final); err != nil {
		return sv.fail(s, FailScenario, fmt.Errorf("saving final state: %v", err))
	}
	result := run.Result()
	s.update(func() {
		s.state = StateDone
		s.result = result
		s.phases = append(s.phases[:0], result.Phases...)
		s.checks = result.Checks
		s.digest = stateDigest(final.Bytes())
	})
	removeSpooled(sv.cfg.Spool, s.ID)
	return attemptDone
}

// transient records a transient failure and decides retry vs give-up.
// The machine of this attempt is always discarded (a crashed parallel
// pool is poisoned; a hung machine is abandoned un-Closed per the guard
// contract) — the next attempt restores the spooled checkpoint into a
// fresh simulator.
func (sv *Server) transient(s *Session, err error, closeSim *bool) attemptOutcome {
	if guard.IsHang(err) {
		*closeSim = false // wedged run goroutine still owns the machine
	}
	class := classifyFailure(err)
	var dump string
	var se *guard.StallError
	var ce *guard.CrashError
	if errors.As(err, &se) {
		dump = se.DumpPath
	} else if errors.As(err, &ce) {
		dump = ce.DumpPath
	}
	s.update(func() {
		s.failure = err.Error()
		s.failClass = class
		if dump != "" {
			s.dumpPath = dump
		}
	})
	if s.retries >= sv.cfg.Retries {
		return sv.fail(s, class,
			fmt.Errorf("%v (retries exhausted after %d attempts)", err, s.retries+1))
	}
	return attemptRetry
}

// suspend parks a session for the drain: its latest boundary checkpoint
// is already spooled, so the state transition is all that is needed. The
// partial slice since that checkpoint is discarded — resuming replays it,
// keeping the recovered execution's slice bounds identical to an
// uninterrupted run's.
func (sv *Server) suspend(s *Session) attemptOutcome {
	s.update(func() { s.state = StateSuspended })
	sv.cfg.logf("session %s: suspended (drain); checkpoint retained", s.ID)
	return attemptSuspended
}

// spoolProgress writes the boundary checkpoint for a running session.
func (sv *Server) spoolProgress(s *Session, run *core.ScenarioRun, sim *core.Sim) error {
	var buf bytes.Buffer
	if err := sim.M.Save(&buf); err != nil {
		return err
	}
	step, phaseRan := run.Pos()
	s.mu.Lock()
	retries := s.retries
	s.mu.Unlock()
	return writeCheckpoint(ckptPath(sv.cfg.Spool, s.ID), &checkpoint{
		ID: s.ID, Name: s.Name, Source: s.source,
		WallNanos: int64(s.wall), CycleBudget: s.cycleBudget,
		Retries:  retries,
		NextStep: step, PhaseRan: phaseRan,
		Checks: run.Checks(), Phases: run.Phases(),
		Machine: buf.Bytes(),
	})
}
