package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// spinScenario is a tiny deterministic scenario: a counting loop of
// iters iterations (roughly 3.5 cycles each) with a register check.
func spinScenario(iters int) string {
	return fmt.Sprintf(`workload "spin%d"
mesh 1
generate sp spinloop iters=%d
load sp on node 0
run 1000000
expect reg node=0 cluster=0 reg=1 value=%d
`, iters, iters, iters)
}

// testConfig is a fast-everything server config over a temp spool.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Spool:           t.TempDir(),
		Workers:         2,
		Queue:           64,
		DefaultWall:     30 * time.Second,
		DefaultCycles:   1 << 20,
		CheckpointEvery: 256,
		Retries:         3,
		Backoff:         time.Millisecond,
		BackoffCap:      10 * time.Millisecond,
		Logf:            t.Logf,
	}
}

func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	sv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sv.Drain)
	return sv
}

func waitDone(t *testing.T, s *Session) Info {
	t.Helper()
	select {
	case <-s.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("session %s did not reach a terminal state (state %s)", s.ID, s.Info().State)
	}
	return s.Info()
}

func TestSubmitAndComplete(t *testing.T) {
	sv := mustServer(t, testConfig(t))
	s, err := sv.Submit("spin.wl", spinScenario(600))
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, s)
	if info.State != StateDone {
		t.Fatalf("state %s, failure %q (%s)", info.State, info.Failure, info.FailureClass)
	}
	if info.Checks != 1 || len(info.Phases) != 1 {
		t.Errorf("checks %d, phases %d; want 1, 1", info.Checks, len(info.Phases))
	}
	if info.TotalCycles < 600 {
		t.Errorf("total cycles %d, want >= 600 (chaos tests rely on this)", info.TotalCycles)
	}
	if info.Digest == "" {
		t.Error("no final-state digest")
	}
	if _, err := os.Stat(ckptPath(sv.cfg.Spool, s.ID)); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after completion: %v", err)
	}
}

// digestOf runs a scenario to completion on sv and returns its digest.
func digestOf(t *testing.T, sv *Server, name, src string) Info {
	t.Helper()
	s, err := sv.Submit(name, src)
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, s)
	if info.State != StateDone {
		t.Fatalf("%s: state %s, failure %q (%s)", name, info.State, info.Failure, info.FailureClass)
	}
	if info.Digest == "" {
		t.Fatalf("%s: no digest", name)
	}
	return info
}

// TestCrashRecoveryBitIdentical is the chaos recovery proof at unit
// scale: a session with an injected worker panic must complete after
// retry with a final-state digest identical to a chaos-free control run.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	src := spinScenario(600)

	control := mustServer(t, testConfig(t))
	want := digestOf(t, control, "spin.wl", src)

	cfg := testConfig(t)
	cfg.Chaos = &Chaos{Seed: 42, PanicEvery: 1, MaxCycle: 500}
	chaotic := mustServer(t, cfg)
	got := digestOf(t, chaotic, "spin.wl", src)

	if got.Retries == 0 {
		t.Fatal("chaos session completed without retrying — the injected panic never fired")
	}
	if got.FailureClass != FailCrash {
		t.Errorf("failure class %q, want %q", got.FailureClass, FailCrash)
	}
	if got.Digest != want.Digest {
		t.Errorf("recovered digest %s != control %s", got.Digest, want.Digest)
	}
	if got.TotalCycles != want.TotalCycles || got.Checks != want.Checks {
		t.Errorf("recovered run: %d cycles %d checks; control: %d cycles %d checks",
			got.TotalCycles, got.Checks, want.TotalCycles, want.Checks)
	}
}

// TestStallRecoveryBitIdentical injects a wall-clock stall that trips
// the per-attempt deadline; the retry runs clean and must match the
// control digest.
func TestStallRecoveryBitIdentical(t *testing.T) {
	src := spinScenario(600)

	control := mustServer(t, testConfig(t))
	want := digestOf(t, control, "spin.wl", src)

	cfg := testConfig(t)
	cfg.DefaultWall = 300 * time.Millisecond
	cfg.Grace = 5 * time.Second // stalled step returns within grace: clean StallTimeout
	cfg.Chaos = &Chaos{Seed: 7, StallEvery: 1, StallDelay: time.Second, MaxCycle: 500}
	chaotic := mustServer(t, cfg)
	got := digestOf(t, chaotic, "spin.wl", src)

	if got.Retries == 0 {
		t.Fatal("stalled session completed without retrying")
	}
	if got.FailureClass != FailStallTimeout {
		t.Errorf("failure class %q, want %q", got.FailureClass, FailStallTimeout)
	}
	if got.Digest != want.Digest {
		t.Errorf("recovered digest %s != control %s", got.Digest, want.Digest)
	}
}

// TestHangRecovery drives the grace-expired path: the stalled step
// outlives the grace, the machine is abandoned (never Closed), and the
// retry still converges to the control digest.
func TestHangRecovery(t *testing.T) {
	src := spinScenario(600)

	control := mustServer(t, testConfig(t))
	want := digestOf(t, control, "spin.wl", src)

	cfg := testConfig(t)
	cfg.DefaultWall = 100 * time.Millisecond
	cfg.Grace = 50 * time.Millisecond // expires while the probe still sleeps
	cfg.Chaos = &Chaos{Seed: 11, StallEvery: 1, StallDelay: 700 * time.Millisecond, MaxCycle: 500}
	chaotic := mustServer(t, cfg)
	got := digestOf(t, chaotic, "spin.wl", src)

	if got.Retries == 0 {
		t.Fatal("hung session completed without retrying")
	}
	if got.FailureClass != FailStallHang {
		t.Errorf("failure class %q, want %q", got.FailureClass, FailStallHang)
	}
	if got.Digest != want.Digest {
		t.Errorf("recovered digest %s != control %s", got.Digest, want.Digest)
	}
}

// TestNoCrossSessionInterference runs a chaos-doomed session next to
// clean ones: the clean sessions must finish with digests matching their
// chaos-free controls.
func TestNoCrossSessionInterference(t *testing.T) {
	srcs := []string{spinScenario(300), spinScenario(600), spinScenario(900)}

	control := mustServer(t, testConfig(t))
	var want []Info
	for i, src := range srcs {
		want = append(want, digestOf(t, control, fmt.Sprintf("c%d.wl", i), src))
	}

	cfg := testConfig(t)
	cfg.Chaos = &Chaos{Seed: 3, PanicEvery: 2, MaxCycle: 250} // seqs 2, 4 panic
	chaotic := mustServer(t, cfg)
	var sessions []*Session
	for i, src := range srcs {
		s, err := chaotic.Submit(fmt.Sprintf("c%d.wl", i), src)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	crashed := 0
	for i, s := range sessions {
		info := waitDone(t, s)
		if info.State != StateDone {
			t.Fatalf("session %d: %s (%s: %s)", i, info.State, info.FailureClass, info.Failure)
		}
		if info.Retries > 0 {
			crashed++
		}
		if info.Digest != want[i].Digest {
			t.Errorf("session %d digest %s != control %s", i, info.Digest, want[i].Digest)
		}
	}
	if crashed == 0 {
		t.Error("no session was crashed by chaos; interference test proved nothing")
	}
}

func TestAdmissionControl(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxNodes = 4
	cfg.MaxCycles = 1 << 20
	cfg.MaxWall = time.Minute
	sv := mustServer(t, cfg)

	reject := func(name, src, code string) {
		t.Helper()
		_, err := sv.Submit(name, src)
		var rej *Rejection
		if err == nil {
			t.Errorf("%s: admitted, want %s rejection", name, code)
			return
		}
		if ok := asRejection(err, &rej); !ok || rej.Code != code {
			t.Errorf("%s: error %v, want code %s", name, err, code)
		}
	}
	reject("parse", "workload \"x\"\nmesh 1\nbogus directive\n", "parse")
	reject("mesh", "workload \"x\"\nmesh 8\ngenerate sp spinloop iters=4\nload sp on node 0\nrun 100\n", "over-cap")
	reject("budget", "workload \"x\"\nmesh 1\nbudget 99999999999\ngenerate sp spinloop iters=4\nload sp on node 0\nrun 100\n", "over-cap")
	reject("deadline", "workload \"x\"\nmesh 1\ndeadline 50m\ngenerate sp spinloop iters=4\nload sp on node 0\nrun 100\n", "over-cap")
}

func asRejection(err error, out **Rejection) bool {
	r, ok := err.(*Rejection)
	if ok {
		*out = r
	}
	return ok
}

func TestQueueSheds(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.Queue = 1
	// Make the one worker slow so submissions pile up.
	src := spinScenario(50000)
	sv := mustServer(t, cfg)
	var rejected bool
	for i := 0; i < 20; i++ {
		_, err := sv.Submit(fmt.Sprintf("q%d.wl", i), src)
		var rej *Rejection
		if asRejection(err, &rej) {
			if rej.Code != "busy" {
				t.Fatalf("rejection %v, want busy", err)
			}
			if rej.RetryAfter <= 0 {
				t.Error("busy rejection without a Retry-After hint")
			}
			rejected = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !rejected {
		t.Error("20 submissions into a 1-deep queue never shed load")
	}
	if sv.Stats().Shed == 0 {
		t.Error("shed counter not bumped")
	}
}

func TestCancel(t *testing.T) {
	sv := mustServer(t, testConfig(t))
	s, err := sv.Submit("spin.wl", spinScenario(200000))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel() {
		t.Fatal("cancel rejected")
	}
	info := waitDone(t, s)
	if info.State != StateCanceled {
		t.Fatalf("state %s, want canceled", info.State)
	}
	if _, err := os.Stat(ckptPath(sv.cfg.Spool, s.ID)); !os.IsNotExist(err) {
		t.Error("canceled session left its checkpoint in the spool")
	}
	if s.Cancel() {
		t.Error("cancel of a terminal session accepted")
	}
}

// TestDrainSuspendsAndReAdopts is the drain/restart contract: drain
// checkpoints in-flight sessions as suspended, a new server over the
// same spool re-adopts them, and the resumed result is bit-identical to
// an uninterrupted run.
func TestDrainSuspendsAndReAdopts(t *testing.T) {
	src := spinScenario(20000)

	control := mustServer(t, testConfig(t))
	want := digestOf(t, control, "spin.wl", src)

	cfg := testConfig(t)
	cfg.Workers = 1
	sv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sv1.Submit("spin.wl", src)
	if err != nil {
		t.Fatal(err)
	}
	// Give the session time to advance past at least one checkpoint, then
	// drain mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for len(s1.Info().Phases) == 0 && s1.Info().State != StateDone && time.Now().Before(deadline) {
		if ck, err := readCheckpoint(ckptPath(cfg.Spool, s1.ID)); err == nil && len(ck.Machine) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sv1.Drain()
	info := s1.Info()
	if info.State == StateDone {
		t.Skip("session finished before the drain landed; nothing to suspend")
	}
	if info.State != StateSuspended {
		t.Fatalf("after drain: state %s, want suspended", info.State)
	}
	ck, err := readCheckpoint(ckptPath(cfg.Spool, s1.ID))
	if err != nil {
		t.Fatalf("suspended session has no readable checkpoint: %v", err)
	}
	if ck.ID != s1.ID {
		t.Fatalf("checkpoint identity %s, want %s", ck.ID, s1.ID)
	}

	// Refusal while draining.
	if _, err := sv1.Submit("late.wl", src); err == nil {
		t.Error("submission accepted while draining")
	}

	// Boot a second server over the same spool: the session must be
	// re-adopted and run to a bit-identical completion.
	sv2 := mustServer(t, cfg)
	if sv2.Stats().Adopted != 1 {
		t.Fatalf("adopted %d sessions, want 1", sv2.Stats().Adopted)
	}
	s2, ok := sv2.Get(s1.ID)
	if !ok {
		t.Fatalf("re-adopted session %s not found", s1.ID)
	}
	got := waitDone(t, s2)
	if got.State != StateDone {
		t.Fatalf("resumed session: %s (%s: %s)", got.State, got.FailureClass, got.Failure)
	}
	if got.Digest != want.Digest {
		t.Errorf("resumed digest %s != control %s", got.Digest, want.Digest)
	}
	if got.TotalCycles != want.TotalCycles {
		t.Errorf("resumed cycles %d != control %d", got.TotalCycles, want.TotalCycles)
	}
}

func TestBudgetExhaustionPermanent(t *testing.T) {
	cfg := testConfig(t)
	sv := mustServer(t, cfg)
	src := "workload \"over\"\nmesh 1\nbudget 100\ngenerate sp spinloop iters=100000\nload sp on node 0\nrun 900000\n"
	s, err := sv.Submit("over.wl", src)
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, s)
	if info.State != StateFailed || info.FailureClass != FailBudget {
		t.Fatalf("state %s class %s, want failed/%s (failure %q)",
			info.State, info.FailureClass, FailBudget, info.Failure)
	}
	if info.Retries != 0 {
		t.Errorf("budget exhaustion was retried %d times; it is permanent", info.Retries)
	}
}

func TestScenarioFailurePermanent(t *testing.T) {
	sv := mustServer(t, testConfig(t))
	src := "workload \"bad\"\nmesh 1\ngenerate sp spinloop iters=10\nload sp on node 0\nrun 100000\nexpect reg node=0 cluster=0 reg=1 value=11\n"
	s, err := sv.Submit("bad.wl", src)
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, s)
	if info.State != StateFailed || info.FailureClass != FailScenario {
		t.Fatalf("state %s class %s, want failed/%s", info.State, info.FailureClass, FailScenario)
	}
	if !strings.Contains(info.Failure, "expect reg") {
		t.Errorf("failure %q does not name the failing expectation", info.Failure)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := ckptPath(dir, "s000042")
	want := &checkpoint{
		ID: "s000042", Name: "x.wl", Source: "workload \"x\"\nmesh 1\n",
		WallNanos: int64(time.Minute), CycleBudget: 123456, Retries: 2,
		NextStep: 3, PhaseRan: 777, Checks: 4,
		Phases:  []core.PhaseResult{{Name: "a", Cycles: 10}, {Name: "b", Cycles: 20}},
		Machine: []byte{1, 2, 3, 4, 5},
	}
	if err := writeCheckpoint(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := readCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Name != want.Name || got.Source != want.Source ||
		got.WallNanos != want.WallNanos || got.CycleBudget != want.CycleBudget ||
		got.Retries != want.Retries || got.NextStep != want.NextStep ||
		got.PhaseRan != want.PhaseRan || got.Checks != want.Checks ||
		len(got.Phases) != len(want.Phases) || !bytes.Equal(got.Machine, want.Machine) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Corruption is an error, not a panic or a half-read.
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-3], 0o644)
	if _, err := readCheckpoint(path); err == nil {
		t.Error("truncated checkpoint decoded without error")
	}
	os.WriteFile(path, []byte("not a checkpoint at all"), 0o644)
	if _, err := readCheckpoint(path); err == nil {
		t.Error("garbage checkpoint decoded without error")
	}
}

func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("seed=9,panic=3,stall=5,delay=1500ms,maxcycle=2000")
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 9 || c.PanicEvery != 3 || c.StallEvery != 5 ||
		c.StallDelay != 1500*time.Millisecond || c.MaxCycle != 2000 {
		t.Fatalf("parsed %+v", c)
	}
	for _, bad := range []string{"panic", "panic=x", "wibble=1", "maxcycle=0"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
	// Determinism: same seq, same fault.
	p1, d1 := c.probe(3, 4)
	p2, d2 := c.probe(3, 4)
	if (p1 == nil) != (p2 == nil) || d1 != d2 {
		t.Errorf("probe derivation not deterministic: %q vs %q", d1, d2)
	}
	if _, d := c.probe(15, 4); !strings.Contains(d, "panic") {
		t.Errorf("seq 15 (both panic and stall multiples): %q, want panic-wins", d)
	}
}

// --- HTTP API ---

func TestHTTPAPI(t *testing.T) {
	sv := mustServer(t, testConfig(t))
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// Health.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Submit via JSON.
	body, _ := json.Marshal(submitRequest{Name: "spin.wl", Source: spinScenario(600)})
	resp, err = http.Post(ts.URL+"/api/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || info.ID == "" {
		t.Fatalf("submit: %d, %+v", resp.StatusCode, info)
	}

	// Wait for completion.
	resp, err = http.Get(ts.URL + "/api/v1/sessions/" + info.ID + "/wait")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.State != StateDone || info.Digest == "" {
		t.Fatalf("wait: %+v", info)
	}

	// Stream of a finished session: replay ends with an "end" event.
	resp, err = http.Get(ts.URL + "/api/v1/sessions/" + info.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	var events []streamEvent
	dec := json.NewDecoder(resp.Body)
	for {
		var ev streamEvent
		if err := dec.Decode(&ev); err != nil {
			break
		}
		events = append(events, ev)
	}
	resp.Body.Close()
	if len(events) == 0 || events[len(events)-1].Event != "end" {
		t.Fatalf("stream events: %+v", events)
	}

	// Raw text submission.
	resp, err = http.Post(ts.URL+"/api/v1/sessions?name=raw.wl", "text/plain",
		strings.NewReader(spinScenario(300)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("raw submit: %d", resp.StatusCode)
	}

	// Parse errors are 400 with a positional message.
	resp, err = http.Post(ts.URL+"/api/v1/sessions", "text/plain", strings.NewReader("mesh mesh mesh"))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr apiError
	json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || apiErr.Code != "parse" {
		t.Fatalf("bad scenario: %d %+v", resp.StatusCode, apiErr)
	}

	// List includes both sessions.
	resp, err = http.Get(ts.URL + "/api/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list []Info
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 2 {
		t.Fatalf("list: %d sessions, want 2", len(list))
	}

	// 404.
	resp, err = http.Get(ts.URL + "/api/v1/sessions/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing session: %d", resp.StatusCode)
	}

	// Stats counted the work.
	resp, err = http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Submitted != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHTTPCancelAndDrainStatus(t *testing.T) {
	sv := mustServer(t, testConfig(t))
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(submitRequest{Name: "spin.wl", Source: spinScenario(200000)})
	resp, err := http.Post(ts.URL+"/api/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info Info
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/sessions/"+info.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	s, _ := sv.Get(info.ID)
	if got := waitDone(t, s); got.State != StateCanceled {
		t.Fatalf("state %s, want canceled", got.State)
	}

	// Second cancel conflicts.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel: %d, want 409", resp.StatusCode)
	}

	// Drain flips health and refuses submissions with 503.
	sv.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/api/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
}

// TestSpoolQuarantine is the corrupt-spool regression test: a boot over
// a spool holding truncated, garbage, and wrongly-identified .ckpt files
// must quarantine each (rename to .bad, never delete — forensic
// evidence), count them, and still adopt and finish the healthy session.
func TestSpoolQuarantine(t *testing.T) {
	cfg := testConfig(t)
	src := spinScenario(100)

	good := &checkpoint{ID: "s000001", Name: "spin.wl", Source: src,
		WallNanos: int64(30 * time.Second), CycleBudget: 1 << 20}
	if err := writeCheckpoint(ckptPath(cfg.Spool, good.ID), good); err != nil {
		t.Fatal(err)
	}
	// Torn write: a valid checkpoint cut short mid-payload.
	var buf bytes.Buffer
	if err := writeCheckpoint(ckptPath(cfg.Spool, "s000002"), good); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(ckptPath(cfg.Spool, "s000002"))
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(whole[:20])
	if err := os.WriteFile(ckptPath(cfg.Spool, "s000002"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Garbage that is not a checkpoint at all.
	if err := os.WriteFile(ckptPath(cfg.Spool, "s000003"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A checkpoint whose internal identity disagrees with its file name.
	bad := *good
	bad.ID = "s000099"
	if err := writeCheckpoint(ckptPath(cfg.Spool, "s000004"), &bad); err != nil {
		t.Fatal(err)
	}

	sv := mustServer(t, cfg)
	st := sv.Stats()
	if st.Adopted != 1 || st.Quarantined != 3 {
		t.Fatalf("adopted %d quarantined %d, want 1 and 3", st.Adopted, st.Quarantined)
	}
	for _, id := range []string{"s000002", "s000003", "s000004"} {
		if _, err := os.Stat(ckptPath(cfg.Spool, id)); !os.IsNotExist(err) {
			t.Errorf("%s.ckpt still in the spool after quarantine", id)
		}
		if _, err := os.Stat(ckptPath(cfg.Spool, id) + ".bad"); err != nil {
			t.Errorf("%s.ckpt.bad missing: %v", id, err)
		}
	}
	s, ok := sv.Get("s000001")
	if !ok {
		t.Fatal("healthy session not adopted")
	}
	info := waitDone(t, s)
	if info.State != StateDone {
		t.Fatalf("adopted session: %s (%s: %s)", info.State, info.FailureClass, info.Failure)
	}
}

// TestRetryObservability checks the recovery bookkeeping a crashed-then-
// recovered session exposes: attempt count, live backoff while retrying,
// the sticky last failure class, and the server's aggregate recovery
// counters.
func TestRetryObservability(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.Backoff = 300 * time.Millisecond
	cfg.BackoffCap = 2 * time.Second
	cfg.Chaos = &Chaos{Seed: 42, PanicEvery: 1, MaxCycle: 500}
	sv := mustServer(t, cfg)

	s, err := sv.Submit("spin.wl", spinScenario(600))
	if err != nil {
		t.Fatal(err)
	}
	// Catch the session inside its first backoff window: state retrying
	// with a human-readable backoff duration.
	sawBackoff := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info := s.Info()
		if info.State == StateRetrying && info.Backoff != "" {
			sawBackoff = true
			break
		}
		if info.State.Terminal() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawBackoff {
		t.Error("never observed state=retrying with a backoff value")
	}

	info := waitDone(t, s)
	if info.State != StateDone {
		t.Fatalf("state %s (%s: %s)", info.State, info.FailureClass, info.Failure)
	}
	if info.Retries < 1 || info.Attempts < 2 {
		t.Errorf("retries %d attempts %d, want >= 1 and >= 2", info.Retries, info.Attempts)
	}
	if info.Attempts != info.Retries+1 {
		t.Errorf("attempts %d != retries %d + 1", info.Attempts, info.Retries)
	}
	if info.Backoff != "" {
		t.Errorf("backoff %q still set on a done session", info.Backoff)
	}
	if info.FailureClass != FailCrash {
		t.Errorf("last failure class %q, want %q (sticky after recovery)", info.FailureClass, FailCrash)
	}

	st := sv.Stats()
	if st.Retries < 1 || st.Recovered < 1 {
		t.Errorf("stats retries %d recovered %d, want >= 1 each", st.Retries, st.Recovered)
	}
	if st.Restores < 1 {
		t.Errorf("stats restores %d, want >= 1 (retry resumed from a boundary checkpoint)", st.Restores)
	}
}
