// Benchmark harness: one benchmark per table and figure of the paper, plus
// the mechanism ablations indexed in DESIGN.md. Each benchmark regenerates
// its result on the simulator and reports the headline quantity as a custom
// metric (cycles, cycles/iter, etc.), so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The same measurements with
// paper-vs-measured comparison tables are printed by cmd/mbench.
package repro_test

import (
	"strings"
	"testing"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/noc"
)

// BenchmarkTable1 regenerates every row of Table 1 (E1), reporting each
// cell's latency in cycles as a metric.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				name := strings.ReplaceAll(r.Class.String(), " ", "_")
				b.ReportMetric(float64(r.Read), name+"_read_cycles")
				b.ReportMetric(float64(r.Write), name+"_write_cycles")
			}
		}
	}
}

// BenchmarkFigure9Read regenerates the remote read timeline (E2).
func BenchmarkFigure9Read(b *testing.B) {
	var total int64
	for i := 0; i < b.N; i++ {
		r, _, err := core.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		total = r.Total
	}
	b.ReportMetric(float64(total), "remote_read_cycles")
}

// BenchmarkFigure9Write regenerates the remote write timeline (E2).
func BenchmarkFigure9Write(b *testing.B) {
	var total int64
	for i := 0; i < b.N; i++ {
		_, w, err := core.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		total = w.Total
	}
	b.ReportMetric(float64(total), "remote_write_cycles")
}

// BenchmarkFigure5Stencils regenerates the stencil schedule-depth results
// (E3): 7-point 12 -> 8 and 27-point 36 -> 17 in the paper.
func BenchmarkFigure5Stencils(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := core.StencilExperiment()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rs {
				name := r.Name[:1] + "pt"
				if r.Name[1] == '7' { // "27-point ..."
					name = "27pt"
				}
				b.ReportMetric(float64(r.Depth), name+"_depth_x"+itoa(r.HThreads))
				b.ReportMetric(float64(r.Cycles), name+"_cycles_x"+itoa(r.HThreads))
			}
		}
	}
}

// BenchmarkFigure6LoopSync regenerates the loop synchronization overhead
// (E4).
func BenchmarkFigure6LoopSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := core.LoopSyncExperiment(100)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rs {
				b.ReportMetric(r.PerIter-r.BaselinePerIter,
					"barrier_overhead_x"+itoa(r.HThreads))
			}
		}
	}
}

// BenchmarkAreaModel evaluates the Sections 1/5 analytical model (E5): the
// 85:1 peak-performance-per-area headline.
func BenchmarkAreaModel(b *testing.B) {
	var r area.Results
	for i := 0; i < b.N; i++ {
		r = area.Evaluate(area.PaperInputs())
	}
	b.ReportMetric(r.PerfPerAreaGain, "perf_per_area_gain")
	b.ReportMetric(r.AreaRatio, "area_ratio")
}

// BenchmarkVThreads measures latency tolerance from V-Thread interleaving
// (E6).
func BenchmarkVThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := core.VThreadExperiment(200)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rs {
				b.ReportMetric(r.LoadsPerKCycle, "loads_per_kcycle_x"+itoa(r.VThreads))
			}
		}
	}
}

// BenchmarkThrottle exercises the return-to-sender protocol (E7).
func BenchmarkThrottle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.ThrottleExperiment(24, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.SendsBlocked), "send_stalls")
			b.ReportMetric(float64(r.Returned), "messages_returned")
		}
	}
}

// BenchmarkGTLB measures raw GTLB translation throughput over a block/
// cyclic interleaved page group (E8).
func BenchmarkGTLB(b *testing.B) {
	rows := core.GTLBExperiment()
	if len(rows) == 0 {
		b.Fatal("no GTLB rows")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GTLBExperiment()
	}
}

// BenchmarkGuardedPtr measures the guarded-pointer overhead ablation (E9).
func BenchmarkGuardedPtr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.GuardedPtrExperiment(200)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.GuardedCycles), "guarded_cycles")
			b.ReportMetric(float64(r.RawCycles), "raw_cycles")
		}
	}
}

// BenchmarkSyncBits measures the synchronizing producer/consumer handoff
// (E10).
func BenchmarkSyncBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.SyncBitsExperiment()
		if err != nil {
			b.Fatal(err)
		}
		if !r.HandoffOK {
			b.Fatal("handoff failed")
		}
	}
}

// BenchmarkBlockCache measures caching remote data in local DRAM (E11).
func BenchmarkBlockCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.BlockCacheExperiment()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.CachedPass2), "cached_pass2_cycles")
			b.ReportMetric(float64(r.UncachedPass2), "uncached_pass2_cycles")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per second for a busy 4-node machine, the simulator's own
// performance number.
func BenchmarkSimulatorThroughput(b *testing.B) {
	s, err := core.NewSim(core.Options{Nodes: 4})
	if err != nil {
		b.Fatal(err)
	}
	src := `
    movi i1, #0
loop:
    add i1, i1, #1
    br loop
`
	for n := 0; n < 4; n++ {
		if err := s.LoadASM(n, 0, 0, src); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.M.Step()
	}
	b.ReportMetric(float64(b.N), "sim_cycles")
}

// BenchmarkEngineThroughput measures the cycle engine itself: simulated
// cycles per second via Machine.Step across a node-count sweep (single
// node, x-axis rows, and the 4x4x2 mesh), under two loads. "busy" runs a
// spin loop on every node (the engine's worst case: every chip issues
// every cycle); "sparse" runs it on node 0 only, so the sweep exposes what
// idle nodes cost — the number future scaling PRs need to track.
func BenchmarkEngineThroughput(b *testing.B) {
	sizes := []struct {
		name string
		dims noc.Coord
	}{
		{"Nodes1", noc.Coord{X: 1, Y: 1, Z: 1}},
		{"Nodes4", noc.Coord{X: 4, Y: 1, Z: 1}},
		{"Nodes16", noc.Coord{X: 16, Y: 1, Z: 1}},
		{"Mesh4x4x2", noc.Coord{X: 4, Y: 4, Z: 2}},
	}
	spin := `
    movi i1, #0
loop:
    add i1, i1, #1
    br loop
`
	for _, load := range []string{"busy", "sparse"} {
		for _, sz := range sizes {
			b.Run(load+"/"+sz.name, func(b *testing.B) {
				s, err := core.NewSim(core.Options{Dims: sz.dims})
				if err != nil {
					b.Fatal(err)
				}
				active := s.M.NumNodes()
				if load == "sparse" {
					active = 1
				}
				for n := 0; n < active; n++ {
					if err := s.LoadASM(n, 0, 0, spin); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.M.Step()
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
				b.ReportMetric(float64(b.N)*float64(s.M.NumNodes())/b.Elapsed().Seconds(),
					"node-cycles/sec")
			})
		}
	}
}

// BenchmarkEngineFastForward measures the idle fast-forward path: a
// complete Run of a remote-access workload on an 8-node machine, where
// almost every cycle is a wait on memory, handler, or network latency and
// the event engine jumps the clock instead of stepping through it.
func BenchmarkEngineFastForward(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := core.NewSim(core.Options{Nodes: 8})
		if err != nil {
			b.Fatal(err)
		}
		addr := s.HomeBase(7) + 16
		if err := s.LoadASM(0, 0, 0, itoaProg(addr)); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(200000); err != nil {
			b.Fatal(err)
		}
	}
}

// itoaProg builds a far-remote pointer-chase: store then dependent loads.
func itoaProg(addr uint64) string {
	return `
    movi i1, #` + itoa(int(addr)) + `
    movi i2, #99
    st [i1], i2
    ld i3, [i1]
    add i4, i3, #1
    st [i1+1], i4
    ld i5, [i1+1]
    halt
`
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
