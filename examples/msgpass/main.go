// Msgpass: protected user-level message passing (Section 4.1, Figure 7).
// Two unprivileged user threads on different nodes ping-pong a value using
// nothing but the atomic SEND instruction and synchronizing memory: the
// system grants each thread guarded pointers to the communication words and
// registers the remote-store DIP; protection is enforced by hardware on
// every SEND (tagged pointer, legal DIP) with no OS call on the fast path.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gp"
)

const rounds = 16

func main() {
	sim, err := core.NewSim(core.Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	ping := sim.HomeBase(1) + 32 // on node 1
	pong := sim.HomeBase(0) + 32 // on node 0

	// First-touch both words at their homes so the sync bits start empty
	// on mapped pages.
	for node, addr := range map[int]uint64{0: pong, 1: ping} {
		if err := sim.LoadASM(node, 3, 3, fmt.Sprintf(
			"movi i1, #%d\nmovi i2, #0\nst [i1], i2\nhalt", addr)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sim.Run(100_000); err != nil {
		log.Fatal(err)
	}

	dip := sim.RT.DIPRemoteWriteSync

	// Node 0: send the ping, wait for the pong. The payload derives from
	// the previous pong (i9): synchronizing loads do not block the thread
	// until their value is used (Section 3.3), so without this dependence
	// the loop would race ahead and pipeline its pings.
	if err := sim.LoadUserASM(0, 0, 0, fmt.Sprintf(`
    movi i3, #%d            ; registered remote-store-sync DIP
    movi i5, #0
    movi i6, #%d
loop:
    add  i8, i9, #1000      ; payload = last pong + 1000 (serializes)
    send i1, i3, i8, #1     ; ping -> node 1 (atomic, protected)
    ldsy.fe i9, [i2]        ; wait for the pong (sync bit)
    add  i5, i5, #1
    lt   i7, i5, i6
    brt  i7, loop
    halt
`, dip, rounds)); err != nil {
		log.Fatal(err)
	}
	// Node 1: wait for the ping, reply with payload+1.
	if err := sim.LoadUserASM(1, 0, 0, fmt.Sprintf(`
    movi i3, #%d
    movi i5, #0
    movi i6, #%d
loop:
    ldsy.fe i9, [i1]        ; wait for the ping
    add  i8, i9, #1
    send i2, i3, i8, #1     ; pong -> node 0
    add  i5, i5, #1
    lt   i7, i5, i6
    brt  i7, loop
    halt
`, dip, rounds)); err != nil {
		log.Fatal(err)
	}

	// The system grants the capabilities: node 0 may write ping (remote)
	// and read pong (local); node 1 the reverse.
	grants := []struct {
		node, reg int
		addr      uint64
	}{
		{0, 1, ping}, {0, 2, pong},
		{1, 1, ping}, {1, 2, pong},
	}
	for _, g := range grants {
		if err := sim.GrantPointer(g.node, 0, 0, g.reg, gp.PermRW, 4, g.addr); err != nil {
			log.Fatal(err)
		}
	}

	cycles, err := sim.Run(5_000_000)
	if err != nil {
		log.Fatal(err)
	}
	last := sim.Reg(0, 0, 0, 9)
	fmt.Printf("%d ping-pong rounds in %d cycles (%.0f cycles/round trip)\n",
		rounds, cycles, float64(cycles)/rounds)
	// pong_k = pong_{k-1} + 1001, so the final pong is rounds*1001.
	fmt.Printf("final pong payload = %d (expect %d)\n", last, rounds*1001)

	st := sim.Stats()
	fmt.Printf("messages injected %d, sync faults retried in software %d\n",
		st.MsgsInjected, st.SyncFaults)
	fmt.Println()
	fmt.Println("Every SEND was checked in hardware: tagged pointer destination,")
	fmt.Println("GTLB translation within the sender's address space, registered")
	fmt.Println("DIP — the paper's protected user-level network access.")
}
