// Wdsl: the declarative workload DSL from Go. Compiles an embedded .wl
// scenario — a two-node ping-pong over synchronizing memory — and runs
// it under both the serial event engine and the parallel chip engine,
// demonstrating that a scenario is a simulated result: the cycle counts
// are bit-identical whichever engine executes it. See docs/wdsl.md for
// the language reference and testdata/workloads/ for larger scenarios.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const scenario = `
; Two nodes ping-pong a counter through sync-bit stores: node 0 sends
; through the remote-write-sync dispatch pointer, node 1 waits on its
; mailbox word with ldsy.fe, increments, and sends it back.
workload "two-node ping-pong over sync bits"
mesh 2
const MB     64            ; mailbox word offset in each node's home range
const ROUNDS 8

program touch
    movi i1, #{home(node)+MB}
    movi i2, #0
    st [i1], i2
    halt
end

program ping
    movi i2, #{dipsync}
    movi i9, #0                ; last pong value
repeat r = 1 .. ROUNDS
    add i8, i9, #1             ; payload = last pong + 1
    movi i1, #{home(1)+MB}
    send i1, i2, i8, #1
    movi i4, #{home(0)+MB}
    ldsy.fe i9, [i4]           ; wait for the reply
end
    halt
end

program pong
    movi i2, #{dipsync}
repeat r = 1 .. ROUNDS
    movi i4, #{home(1)+MB}
    ldsy.fe i5, [i4]
    add i5, i5, #1
    movi i1, #{home(0)+MB}
    send i1, i2, i5, #1
end
    halt
end

phase touch
load touch on all vthread=3 cluster=3
run 100000

phase pingpong
load ping on node 0
load pong on node 1
run 200000

; Each round adds 2 (ping increments, pong increments back).
expect reg node=0 reg=9 value=2*ROUNDS
`

func main() {
	sc, err := core.ScenarioFromDSL("pingpong.wl", scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s\n\n", sc.Title())

	engines := []struct {
		name string
		opts core.Options
	}{
		{"event engine (serial)", core.Options{}},
		{"parallel engine (2 shards)", core.Options{Workers: 2}},
	}
	var ref *core.ScenarioResult
	for _, e := range engines {
		res, err := sc.Run(e.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", e.name)
		for _, ph := range res.Phases {
			fmt.Printf("  phase %-10s %7d cycles\n", ph.Name, ph.Cycles)
		}
		fmt.Printf("  %-16s %7d cycles, %d expectation(s) verified\n",
			"total", res.TotalCycles, res.Checks)
		if ref == nil {
			ref = res
		} else if res.TotalCycles != ref.TotalCycles {
			log.Fatalf("engines diverged: %d vs %d cycles", res.TotalCycles, ref.TotalCycles)
		}
	}
	fmt.Println("\nboth engines agree bit-for-bit — a scenario is a simulated")
	fmt.Println("result, independent of how the host executes it.")
}
