// Remotemem: transparent access to remote memory (Section 4.2). An
// unmodified program on node 0 loads and stores addresses homed on node 1;
// LTLB misses trap to software, which converts them into messages, all
// invisibly to the program. The example prints the resulting Figure 9-style
// event timeline and then repeats the run with caching enabled
// (Section 4.3) to show the block being migrated into local DRAM.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	fmt.Println("-- non-cached remote access (Section 4.2) --")
	runOnce(false)
	fmt.Println()
	fmt.Println("-- with caching in local DRAM (Section 4.3) --")
	runOnce(true)
}

func runOnce(caching bool) {
	sim, err := core.NewSim(core.Options{Nodes: 2, Caching: caching})
	if err != nil {
		log.Fatal(err)
	}
	remote := sim.HomeBase(1) + 8

	// Stage a value at its home node.
	if err := sim.LoadASM(1, 0, 0, fmt.Sprintf(`
    movi i1, #%d
    movi i2, #1234
    st [i1], i2
    halt
`, remote)); err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(100_000); err != nil {
		log.Fatal(err)
	}

	// Node 0 dereferences the remote address like any other: the program
	// contains only ordinary loads and stores.
	sim.Recorder.Reset()
	if err := sim.LoadASM(0, 0, 0, fmt.Sprintf(`
    movi i1, #%d
    ld  i2, [i1]            ; remote load
    add i3, i2, #1
    st [i1+1], i3           ; remote store
    ld  i4, [i1+1]          ; second access: local if caching is on
    halt
`, remote)); err != nil {
		log.Fatal(err)
	}
	cycles, err := sim.Run(500_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("node 0 read %d, wrote back %d in %d cycles\n",
		sim.Reg(0, 0, 0, 2), sim.Reg(0, 0, 0, 4), cycles)
	if w, err := sim.Peek(1, remote+1); err == nil {
		if caching {
			// With caching the store dirtied node 0's local copy of the
			// block (status DIRTY, Section 4.3); writing it back to the
			// home is a software coherence policy decision, so the home
			// still holds the old value here.
			fmt.Printf("home node still sees %d at %#x (dirty copy lives on node 0, status %v)\n",
				w, remote+1, sim.M.Chip(0).Mem.BlockStatusOf(remote+1))
		} else {
			fmt.Printf("home node sees %d at %#x\n", w, remote+1)
		}
	}
	st := sim.Stats()
	fmt.Printf("LTLB faults %d, status faults %d, messages %d\n",
		st.LTLBFaults, st.StatusFaults, st.MsgsInjected)

	fmt.Println("event timeline:")
	fmt.Print(trace.Timeline(sim.Recorder.Filter(0,
		"mem-issue", "event", "send", "msg-recv", "rstw", "mretry", "tlbw")))
}
