// Stencil: the Figure 5 workload. Runs the 7-point smoothing kernel on one
// and two H-Threads and the 27-point kernel on one and four H-Threads,
// reporting the static schedule depth (the paper's metric: 12 -> 8 and
// 36 -> 17) alongside measured execution cycles and the computed value.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	fmt.Println("Figure 5: stencil kernels across H-Threads")
	fmt.Println()

	for _, cfg := range []struct{ points, hthreads int }{
		{7, 1}, {7, 2}, {27, 1}, {27, 4},
	} {
		var st *workload.Stencil
		var err error
		if cfg.points == 7 {
			st, err = workload.Stencil7(cfg.hthreads)
		} else {
			st, err = workload.Stencil27(cfg.hthreads)
		}
		if err != nil {
			log.Fatal(err)
		}

		sim, err := core.NewSim(core.Options{Nodes: 1})
		if err != nil {
			log.Fatal(err)
		}
		sim.MapLocal(0, 0, 2, true)

		// Residuals r_i = i+1, u = 10; weights a=2, b=3 are set by the
		// kernel prelude. Expected u' = u + a*r_c + b*sum(neighbours).
		n := cfg.points - 1
		sum := 0.0
		for i := 0; i < n; i++ {
			v := float64(i + 1)
			sum += v
			if err := sim.Poke(0, st.RBase+uint64(i), math.Float64bits(v)); err != nil {
				log.Fatal(err)
			}
		}
		rc := float64(n + 1)
		if err := sim.Poke(0, st.RBase+uint64(n), math.Float64bits(rc)); err != nil {
			log.Fatal(err)
		}
		if err := sim.Poke(0, st.UAddr, math.Float64bits(10)); err != nil {
			log.Fatal(err)
		}

		for cl, p := range st.Programs {
			sim.LoadProgram(0, 0, cl, p, true)
		}
		cycles, err := sim.Run(100_000)
		if err != nil {
			log.Fatal(err)
		}
		bits, err := sim.Peek(0, st.UAddr)
		if err != nil {
			log.Fatal(err)
		}
		got := math.Float64frombits(bits)
		want := 10 + 2*rc + 3*sum
		fmt.Printf("%-18s %d H-Thread(s): depth %2d, %3d cycles, u = %6.0f (want %6.0f)\n",
			st.Name, st.HThreads, st.Depth, cycles, got, want)
	}

	fmt.Println()
	fmt.Println("The paper's static depths: 7-point 12 -> 8 (2 H-Threads),")
	fmt.Println("27-point 36 -> 17 (4 H-Threads). Depth falls because the four")
	fmt.Println("clusters execute partial sums concurrently, synchronizing only")
	fmt.Println("through scoreboarded registers (Section 3.1).")
}
