// Parsum: the paper's incremental-parallelization story (Section 1: "An
// unmodified sequential program can run on a single M-Machine node,
// accessing both local and remote memory. This code can be incrementally
// parallelized...").
//
// An array of 256 words is distributed across the four nodes of the
// machine. Phase 1 sums it with a completely sequential program on node 0
// — every remote element is fetched transparently through the LTLB-miss /
// message machinery. Phase 2 runs one worker per node, each summing its
// local quarter, then combines the partials with the atomic fetch-and-add
// RPC. Same answer, same flat address space, a fraction of the cycles.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
)

const (
	nodes       = 4
	perNode     = 64
	total       = nodes * perNode
	accumOffset = 2048 // accumulator word inside node 0's home range
)

func main() {
	seq, err := runSequential()
	if err != nil {
		log.Fatal(err)
	}
	par, err := runParallel()
	if err != nil {
		log.Fatal(err)
	}
	want := uint64(total * (total + 1) / 2)
	fmt.Printf("array: %d words spread over %d nodes, expected sum %d\n\n", total, nodes, want)
	fmt.Printf("phase 1  sequential on node 0, remote data fetched transparently: %8d cycles\n", seq)
	fmt.Printf("phase 2  one worker per node + fetch-add combine:                 %8d cycles\n", par)
	fmt.Printf("\nspeedup %.1fx — the program changed only in how the loop was split;\n", float64(seq)/float64(par))
	fmt.Println("naming, placement, and communication stayed with the memory system.")
}

// fill stages array element values i -> i+1 at each node's home range.
func fill(sim *core.Sim) error {
	for n := 0; n < nodes; n++ {
		base := sim.HomeBase(n) + 512
		if err := sim.LoadASM(n, 3, 3, fmt.Sprintf(`
    movi i1, #%d
    movi i2, #%d
    movi i3, #%d
loop:
    st [i1], i2
    add i1, i1, #1
    add i2, i2, #1
    lt  i4, i2, i3
    brt i4, loop
    halt
`, base, n*perNode+1, n*perNode+perNode+1)); err != nil {
			return err
		}
	}
	_, err := sim.Run(1_000_000)
	return err
}

func runSequential() (int64, error) {
	sim, err := core.NewSim(core.Options{Nodes: nodes, Caching: true})
	if err != nil {
		return 0, err
	}
	if err := fill(sim); err != nil {
		return 0, err
	}
	// One thread, one loop, remote elements included: the unmodified
	// sequential program of the paper's introduction.
	var src string
	src += "    movi i6, #0\n"
	for n := 0; n < nodes; n++ {
		src += fmt.Sprintf(`
    movi i1, #%d
    movi i2, #0
    movi i3, #%d
loop%d:
    ld i4, [i1]
    add i6, i6, i4
    add i1, i1, #1
    add i2, i2, #1
    lt  i5, i2, i3
    brt i5, loop%d
`, sim.HomeBase(n)+512, perNode, n, n)
	}
	src += "    halt\n"
	if err := sim.LoadASM(0, 0, 0, src); err != nil {
		return 0, err
	}
	cycles, err := sim.Run(5_000_000)
	if err != nil {
		return 0, err
	}
	if got := sim.Reg(0, 0, 0, 6); got != uint64(total*(total+1)/2) {
		return 0, fmt.Errorf("sequential sum = %d", got)
	}
	return cycles, nil
}

func runParallel() (int64, error) {
	sim, err := core.NewSim(core.Options{Nodes: nodes})
	if err != nil {
		return 0, err
	}
	if err := fill(sim); err != nil {
		return 0, err
	}
	accum := sim.HomeBase(0) + accumOffset
	if err := sim.Poke(0, accum, 0); err != nil {
		// The accumulator page may not exist yet; first-touch it.
		if err := sim.LoadASM(0, 3, 2, fmt.Sprintf(
			"movi i1, #%d\nmovi i2, #0\nst [i1], i2\nhalt", accum)); err != nil {
			return 0, err
		}
		if _, err := sim.Run(100_000); err != nil {
			return 0, err
		}
	}

	// Each node sums its local quarter, then contributes it atomically
	// with one fetch-add RPC to node 0's accumulator.
	for n := 0; n < nodes; n++ {
		if err := sim.LoadASM(n, 0, 0, fmt.Sprintf(`
    movi i1, #%d            ; local base
    movi i2, #0
    movi i3, #%d
    movi i6, #0
loop:
    ld i4, [i1]
    add i6, i6, i4
    add i1, i1, #1
    add i2, i2, #1
    lt  i5, i2, i3
    brt i5, loop
    movi i1, #%d            ; accumulator address (node 0)
    movi i7, #%d            ; fetch-add DIP
    mov  i8, i6             ; body: delta = partial sum
    movi i9, #%d            ; body: regdesc for i11
    mov  i10, node          ; body: source node
    empty i11
    send i1, i7, i8, #3
    add  i12, i11, #0       ; wait for the RPC reply
    halt
`, sim.HomeBase(n)+512, perNode,
			accum, sim.RT.DIPFetchAdd, isa.RegDesc(0, 0, isa.Int(11)))); err != nil {
			return 0, err
		}
	}
	cycles, err := sim.Run(5_000_000)
	if err != nil {
		return 0, err
	}
	got, err := sim.Peek(0, accum)
	if err != nil {
		return 0, err
	}
	if got != uint64(total*(total+1)/2) {
		return 0, fmt.Errorf("parallel sum = %d", got)
	}
	return cycles, nil
}
