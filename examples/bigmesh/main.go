// Bigmesh: the simulator at machine scale. The paper measures a two-node
// setup; the mesh, GTLB, and runtime support arbitrary 3-D meshes, and the
// parallel simulation engine (core.Options.Workers) shards each busy
// cycle's chip phase across host cores so large meshes stay tractable.
//
// This example runs two all-node workloads on 4x4x2 (32-node) and 8x8x2
// (128-node) meshes:
//
//   - a block-distributed grid smoothing pass with remote halo reads
//     (compute-heavy, mostly local), verified element-by-element;
//   - a neighbour message storm — every node streams remote stores into
//     its successor's mailbox through the SEND datapath (network-heavy),
//     verified word-by-word.
//
// Each workload runs under the serial event engine and the parallel
// engine; simulated cycle counts are bit-identical by design (the
// determinism contract), while host wall time drops with available cores.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/workload"
)

const gridTotal = 2048

func main() {
	fmt.Printf("parallel simulation engine demo (GOMAXPROCS=%d)\n\n", runtime.GOMAXPROCS(0))
	for _, dims := range []noc.Coord{{X: 4, Y: 4, Z: 2}, {X: 8, Y: 8, Z: 2}} {
		nodes := dims.X * dims.Y * dims.Z
		fmt.Printf("=== %dx%dx%d mesh (%d nodes) ===\n", dims.X, dims.Y, dims.Z, nodes)
		for _, eng := range []struct {
			name    string
			workers int
		}{{"serial  ", 1}, {"parallel", -1}} {
			sc, sw := runSmooth(dims, eng.workers)
			fmt.Printf("  smooth   %s  %8d cycles  %10v wall\n", eng.name, sc, sw.Round(time.Millisecond))
			mc, mw := runStorm(dims, eng.workers)
			fmt.Printf("  msgstorm %s  %8d cycles  %10v wall\n", eng.name, mc, mw.Round(time.Millisecond))
		}
		fmt.Println()
	}
	fmt.Println("Simulated cycle counts are identical under both engines — the")
	fmt.Println("parallel engine's outbox drain and per-cycle barrier preserve the")
	fmt.Println("serial injection order bit-for-bit (DESIGN.md, \"The parallel")
	fmt.Println("engine\"); only host wall time changes with available cores.")
}

// runSmooth runs the verified grid smoothing pass and returns simulated
// cycles of the smoothing phase and host wall time of the whole run.
func runSmooth(dims noc.Coord, workers int) (int64, time.Duration) {
	nodes := dims.X * dims.Y * dims.Z
	g, err := workload.NewMeshSmooth(nodes, gridTotal)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	s, err := core.NewSim(core.Options{Dims: dims, Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	defer s.M.Close()
	for n := 0; n < nodes; n++ {
		if err := s.LoadASM(n, 3, 3, g.StageSrc(n, s.HomeBase)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := s.Run(5_000_000); err != nil {
		log.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		if err := s.LoadASM(n, 0, 0, g.WorkerSrc(n, s.HomeBase)); err != nil {
			log.Fatal(err)
		}
	}
	cycles, err := s.Run(10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	for j := 1; j < g.Total()-1; j++ {
		got, err := s.Peek(j/g.Chunk, g.VAddr(s.HomeBase, j))
		if err != nil || got != g.Want(j) {
			log.Fatalf("v[%d] = %d (err %v), want %d", j, got, err, g.Want(j))
		}
	}
	return cycles, time.Since(start)
}

// runStorm runs the verified neighbour message storm.
func runStorm(dims noc.Coord, workers int) (int64, time.Duration) {
	const msgs = 24
	nodes := dims.X * dims.Y * dims.Z
	start := time.Now()
	s, err := core.NewSim(core.Options{Dims: dims, Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	defer s.M.Close()
	for n := 0; n < nodes; n++ {
		src := workload.NeighborExchangeSrc(n, nodes, msgs, s.RT.DIPRemoteWrite, s.HomeBase)
		if err := s.LoadASM(n, 0, 0, src); err != nil {
			log.Fatal(err)
		}
	}
	cycles, err := s.Run(10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		for w := 0; w < msgs; w++ {
			addr := workload.NeighborExchangeAddr(s.HomeBase, n, w)
			got, err := s.Peek(n, addr)
			if err != nil || got != addr {
				log.Fatalf("mailbox %d.%d = %d (err %v), want %d", n, w, got, err, addr)
			}
		}
	}
	return cycles, time.Since(start)
}
