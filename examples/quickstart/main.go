// Quickstart: boot a two-node M-Machine, assemble a small MAP program, run
// it, and read the results back out of the register file.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A two-node machine with the software runtime installed on the event
	// V-Thread of every node. Node i homes virtual words [i*4096, ...).
	sim, err := core.NewSim(core.Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}

	// A 3-wide MAP program: integer, memory, and FP operations issue
	// together from one instruction. The store at the end goes to an
	// unmapped home page: the LTLB-miss handler allocates it on first
	// touch, entirely in simulated software.
	prog := `
    movi i1, #6
    movi i2, #7
    mul  i3, i1, i2         ; 6 * 7
    movi i4, #100
    st [i4], i3             ; first touch allocates the page
    ld i5, [i4]             ; read it back
    add i6, i5, #958        ; 42 + 958
    halt
`
	if err := sim.LoadASM(0, 0, 0, prog); err != nil {
		log.Fatal(err)
	}
	cycles, err := sim.Run(100_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d cycles\n", cycles)
	fmt.Printf("i3 = %d (expect 42)\n", sim.Reg(0, 0, 0, 3))
	fmt.Printf("i5 = %d (expect 42, via memory)\n", sim.Reg(0, 0, 0, 5))
	fmt.Printf("i6 = %d (expect 1000)\n", sim.Reg(0, 0, 0, 6))

	st := sim.Stats()
	fmt.Printf("stats: %d instructions, %d LTLB faults handled in software\n",
		st.Instructions, st.LTLBFaults)
}
