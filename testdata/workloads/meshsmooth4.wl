; DSL re-expression of the distributed grid-smoothing workload on a
; 4-node mesh (internal/core runMeshSmooth, the E13 512-element row): a
; staging phase first-touches and fills each node's chunk of u on
; V-Thread 3 / cluster 3, then the smoothing pass v[j] = u[j-1] + u[j] +
; u[j+1] runs on every node with remote halo reads at chunk boundaries.
;
; Pinned bit-identical to the hand-written generator across all engines
; by TestDSLMatchesHandWritten.

workload "block-distributed grid smoothing, 4 nodes"
mesh 4
const TOTAL 512

generate sstage smooth_stage total=TOTAL
generate swork smooth_work total=TOTAL

phase stage
load sstage on all vthread=3 cluster=3
run 5000000

phase smooth
load swork on all
run 10000000

check smooth total=TOTAL
