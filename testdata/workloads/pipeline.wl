; Producer/consumer pipeline: node 0 streams K items into node 1's
; buffer through sync-bit stores, each middle node consumes an item with
; ldsy.fe, doubles it, and forwards it to its successor, and the last
; node accumulates. Flow control is entirely the word-level
; full/empty bits: a stage can run ahead in its slot index but can
; never read an item its predecessor has not delivered.

workload "producer/consumer pipeline"
mesh 3
const K   8                ; items through the pipeline
const BUF 352              ; per-node buffer words [BUF, BUF+K)

program touch
    movi i1, #{home(node)+BUF}
    movi i2, #0
    movi i3, #0
    movi i4, #{K}
tloop:
    st [i1], i2
    add i1, i1, #1
    add i3, i3, #1
    lt i5, i3, i4
    brt i5, tloop
    halt
end

program produce
    movi i1, #{home(1)+BUF}
    movi i2, #{dipsync}
    movi i3, #0
    movi i4, #{K}
ploop:
    add i5, i3, #1             ; item j carries value j+1
    add i6, i1, i3
    send i6, i2, i5, #1
    add i3, i3, #1
    lt i7, i3, i4
    brt i7, ploop
    halt
end

program relay
    movi i1, #{home(node)+BUF}
    movi i9, #{home(node+1)+BUF}
    movi i2, #{dipsync}
    movi i3, #0
    movi i4, #{K}
rloop:
    add i8, i1, i3
    ldsy.fe i5, [i8]           ; wait for item j
    add i5, i5, i5             ; transform: double it
    add i6, i9, i3
    send i6, i2, i5, #1        ; forward downstream
    add i3, i3, #1
    lt i7, i3, i4
    brt i7, rloop
    halt
end

program consume
    movi i1, #{home(node)+BUF}
    movi i3, #0
    movi i4, #{K}
    movi i10, #0
cloop:
    add i8, i1, i3
    ldsy.fe i5, [i8]
    add i10, i10, i5
    add i3, i3, #1
    lt i7, i3, i4
    brt i7, cloop
    halt
end

phase touch
load touch on all vthread=3 cluster=3
run 200000

phase stream
load produce on node 0
load relay on nodes 1 nodes-2
load consume on node nodes-1
run 500000

; One relay stage doubles each item: sum = 2 * (1 + ... + K) = K*(K+1).
expect reg node=nodes-1 reg=10 value=K*(K+1)
