; DSL re-expression of the E4 loop-synchronization experiment's 2-H-Thread
; configuration (internal/core LoopSyncExperiment): the Figure 6 kernel,
; H-Thread 0 broadcasting the loop condition through gcc1 and H-Thread 1
; acknowledging through gcc3, for 100 lock-step iterations. The interlock
; is correct iff both H-Threads saw every iteration.
;
; Pinned bit-identical to the hand-written experiment across all engines
; by TestDSLMatchesHandWritten.

workload "Figure 6 loop synchronization, 2 H-Threads"
mesh 1
const ITERS 100

generate ls loopsync hthreads=2 iters=ITERS

load ls on node 0               ; leader on cluster 0, follower on cluster 1
run ITERS*200+10000

expect reg node=0 cluster=0 reg=1 value=ITERS
expect reg node=0 cluster=1 reg=1 value=ITERS
