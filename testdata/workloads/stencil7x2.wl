; DSL re-expression of the E3 stencil experiment's 7-point / 2 H-Thread
; configuration (internal/core runStencil): residuals r_i = i+1 at the
; kernel's RBase (0x100), u = 10 at UAddr (0x180), the Figure 5(b)
; two-cluster schedule from the stencil generator, and the paper's
; expected result u' = u + a*r_c + b*sum(neighbours) = 10 + 2*7 + 3*21.
;
; This file is pinned bit-identical to the hand-written experiment across
; all engines by TestDSLMatchesHandWritten.

workload "7-point stencil on 2 H-Threads (Figure 5b)"
mesh 1

generate st7 stencil points=7 hthreads=2

maplocal node=0 page=0          ; page 0 primed read/write, like the harness
poke node=0 addr=0x100 float=1.0    ; r_u
poke node=0 addr=0x101 float=2.0    ; r_d
poke node=0 addr=0x102 float=3.0    ; r_n
poke node=0 addr=0x103 float=4.0    ; r_s
poke node=0 addr=0x104 float=5.0    ; r_e
poke node=0 addr=0x105 float=6.0    ; r_w
poke node=0 addr=0x106 float=7.0    ; r_c
poke node=0 addr=0x180 float=10.0   ; u

load st7 on node 0              ; clusters 0 and 1, privileged
run 100000

expect fmem node=0 addr=0x180 float=87.0
