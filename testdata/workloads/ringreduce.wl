; Ring all-reduce through synchronizing memory: node n contributes the
; value n+1, the running sum travels the ring once through each node's
; mailbox word, and the full total lands back at node 0. Hand-offs use
; the machine's word-level synchronization bits end to end — the sender
; SENDs through the runtime's remote-write-sync dispatch pointer
; (dipsync), which stores the word and marks it full, and the receiver's
; ldsy.fe faults-and-retries until then (Sections 2 and 3.3 mechanisms,
; composed at machine scale).

workload "ring all-reduce over sync bits"
mesh 4
const MB 320               ; mailbox word offset in each node's home range

; First-touch every mailbox at its home so its page is mapped and its
; sync bit starts empty.
program touch
    movi i1, #{home(node)+MB}
    movi i2, #0
    st [i1], i2
    halt
end

; Node 0 injects its contribution, then waits for the total to come
; around.
program seed
    movi i1, #{home(1)+MB}
    movi i2, #{dipsync}
    movi i3, #1                ; node 0's contribution
    send i1, i2, i3, #1
    movi i4, #{home(0)+MB}
    ldsy.fe i5, [i4]           ; blocks (via fault retry) until the ring closes
    halt
end

; Every other node: wait for the partial sum, add its own contribution,
; pass it on.
program relay
    movi i4, #{home(node)+MB}
    ldsy.fe i5, [i4]
    add i5, i5, #{node+1}
    movi i1, #{home((node+1)%nodes)+MB}
    movi i2, #{dipsync}
    send i1, i2, i5, #1
    halt
end

phase touch
load touch on all vthread=3 cluster=3
run 100000

phase ring
load seed on node 0
load relay on nodes 1 nodes-1
run 300000

; Total = 1 + 2 + ... + nodes, both in node 0's register and in its
; mailbox word.
expect reg node=0 reg=5 value=nodes*(nodes+1)/2
expect mem node=0 addr=home(0)+MB value=nodes*(nodes+1)/2
