; Butterfly all-reduce: log2(nodes) exchange rounds, each node pairing
; with partner node^(2^k) in round k. Every node sends its running sum
; to its partner's round-k mailbox through the remote-write-sync
; dispatch pointer and synchronizes on its own round-k mailbox with
; ldsy.fe, so after the last round every node holds the full total —
; the classic recursive-doubling pattern, with no barriers beyond the
; sync bits themselves. The repeat block unrolls the rounds at
; instantiation time, computing each round's partner address with
; xor(node, 1 << k).

workload "butterfly all-reduce, 4 nodes"
mesh 4
const ROUNDS 2             ; log2(nodes)
const MB  336              ; per-round mailbox words [MB, MB+ROUNDS)
const RES 400              ; per-node result word

program touch
    movi i2, #0
repeat k = 0 .. ROUNDS-1
    movi i1, #{home(node)+MB+k}
    st [i1], i2
end
    movi i1, #{home(node)+RES}
    st [i1], i2
    halt
end

program bfly
    movi i4, #{node+1}         ; running sum starts at the own contribution
    movi i2, #{dipsync}
repeat k = 0 .. ROUNDS-1
    movi i1, #{home(xor(node, 1 << k)) + MB + k}
    send i1, i2, i4, #1        ; ship the running sum to round k's partner
    movi i3, #{home(node) + MB + k}
    ldsy.fe i5, [i3]           ; receive the partner's running sum
    add i4, i4, i5
end
    movi i6, #{home(node)+RES}
    st [i6], i4
    halt
end

phase touch
load touch on all vthread=3 cluster=3
run 100000

phase reduce
load bfly on all
run 300000

expect mem node=0 addr=home(0)+RES value=nodes*(nodes+1)/2
expect mem node=1 addr=home(1)+RES value=nodes*(nodes+1)/2
expect mem node=2 addr=home(2)+RES value=nodes*(nodes+1)/2
expect mem node=3 addr=home(3)+RES value=nodes*(nodes+1)/2
