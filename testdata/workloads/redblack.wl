; Red-black sweep: a two-color Gauss-Seidel update over a 128-element
; grid block-distributed across 4 nodes. The grid is strided through the
; flat shared address space — element j lives at virtual word
; 64 + j*128, so chunk n falls inside node n's home range and the halo
; neighbours at chunk boundaries are transparently remote. The red phase
; replaces every even interior element with the sum of its (odd,
; untouched) neighbours; a machine-wide barrier (the phase boundary);
; then the black phase updates the odd elements from the red results,
; reading red values across node boundaries at every chunk edge.

workload "red-black sweep, 4 nodes"
mesh 4
const TOTAL  128
const CHUNK  32            ; TOTAL / nodes
const STRIDE 128           ; words between consecutive elements
const BASE   64            ; element 0's virtual address

; u[j] = j%17 + 1, each node first-touching its own chunk.
program stage
    movi i1, #{BASE + node*CHUNK*STRIDE}
    movi i2, #{node*CHUNK}      ; global element index j
    movi i3, #0
    movi i4, #{CHUNK}
    movi i10, #17
sloop:
    mod i5, i2, i10
    add i5, i5, #1
    st [i1], i5
    add i1, i1, #{STRIDE}
    add i2, i2, #1
    add i3, i3, #1
    lt i6, i3, i4
    brt i6, sloop
    halt
end

; One color's sweep: j from start to bound (exclusive), step 2, with
; u[j] = u[j-1] + u[j+1]. i1 tracks &u[j-1]; the loads at the chunk's
; first element reach into the predecessor node's home range.
program red
    movi i1, #{BASE + (max(node*CHUNK, 2) - 1)*STRIDE}
    movi i2, #{max(node*CHUNK, 2)}
    movi i3, #{min((node+1)*CHUNK, TOTAL-1)}
    movi i4, #{2*STRIDE}
loop:
    ld i5, [i1]
    ld i6, [i1+{2*STRIDE}]
    add i7, i5, i6
    st [i1+{STRIDE}], i7
    add i1, i1, i4
    add i2, i2, #2
    lt i9, i2, i3
    brt i9, loop
    halt
end

program black
    movi i1, #{BASE + node*CHUNK*STRIDE}    ; &u[lo+1-1]
    movi i2, #{node*CHUNK + 1}
    movi i3, #{min((node+1)*CHUNK, TOTAL-1)}
    movi i4, #{2*STRIDE}
loop:
    ld i5, [i1]
    ld i6, [i1+{2*STRIDE}]
    add i7, i5, i6
    st [i1+{STRIDE}], i7
    add i1, i1, i4
    add i2, i2, #2
    lt i9, i2, i3
    brt i9, loop
    halt
end

phase stage
load stage on all vthread=3 cluster=3
run 500000

phase red
load red on all
run 500000

phase black
load black on all vthread=1
run 500000

; black(1) = u0(0) + red(2) = u0(0) + u0(1) + u0(3)
expect mem node=0 addr=BASE+1*STRIDE value=(0%17+1)+(1%17+1)+(3%17+1)
; black(31) = red(30) + red(32): the remote red value of node 1's first
; element crosses the 0/1 chunk boundary
expect mem node=0 addr=BASE+31*STRIDE value=(29%17+1)+2*(31%17+1)+(33%17+1)
; black(63) crosses the 1/2 boundary
expect mem node=1 addr=BASE+63*STRIDE value=(61%17+1)+2*(63%17+1)+(65%17+1)
; red(126) is the last red element and black leaves it alone
expect mem node=3 addr=BASE+126*STRIDE value=(125%17+1)+(127%17+1)
; the grid boundary element is never written
expect mem node=3 addr=BASE+127*STRIDE value=127%17+1
