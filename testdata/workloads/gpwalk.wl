; User-mode guarded-pointer walk (paper Sections 2 and 4.2): the walk
; program is loaded WITHOUT the privileged bit, so it cannot fabricate
; addresses — its only window onto memory is the guarded pointer the
; grant step places in i1: a read-write segment of 2^SEGLEN words at
; BASE. The program bumps the pointer with LEA (the hardware-checked
; guarded-pointer increment) and stores the loop index through it;
; the expectations then read the segment back from the host side.

workload "guarded-pointer user-mode walk"
mesh 1
const N 16
const SEGLEN 6             ; segment of 64 words...
const BASE 64              ; ...naturally aligned at 64

program walk
    movi i2, #0
    movi i3, #{N}
loop:
    lea i1, i1, #1         ; guarded-pointer bump: stays in segment or faults
    st [i1], i2
    add i2, i2, #1
    lt i5, i2, i3
    brt i5, loop
    halt
end

; Order matters: load resets the thread's registers, so the pointer is
; granted after the program is in place.
load walk on node 0 user
grant node=0 reg=1 perms=rw seglen=SEGLEN addr=BASE

phase walk
run 20000

expect reg node=0 reg=2 value=N
expect mem node=0 addr=BASE+1 value=0
expect mem node=0 addr=BASE+N value=N-1
