; Neighbor message storm swept over the per-node message count. The
; staging phase first-touches every node's mailbox page at its home and
; runs exactly once; each MSGS point then starts from a bit-exact fork
; of the staged machine (DESIGN.md "Workload DSL v2"), so three points
; cost one staging. TestSweepMatchesStandalone pins every point's final
; machine digest against a from-boot standalone run of the same point.

workload "neighbor exchange sweep"
mesh 4
sweep MSGS 2 4 8
const MAILBOX 1536         ; MeshMailbox: the generators' mailbox offset

; First-touch each node's mailbox base word at its home so the page is
; mapped before the storm (sweep-independent: the shared prefix).
program touch
    movi i1, #{home(node)+MAILBOX}
    movi i2, #0
    st [i1], i2
    halt
end

; Every node streams MSGS remote stores into its successor's mailbox;
; each message's value is its own destination address, so the result is
; self-checking.
generate ex exchange msgs=MSGS

phase touch
load touch on all vthread=3 cluster=3
run 100000

phase storm
load ex on all
run 400000

check exchange msgs=MSGS
