# Build/verify entry points. `make ci` is the tier-1 gate plus a one-shot
# benchmark smoke pass (every benchmark runs once, so a panicking or
# regressed-to-failure benchmark breaks CI without paying for measurement).

GO ?= go

.PHONY: ci build vet test bench-smoke bench

ci: build vet test bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full measurement run (slow): allocation stats included.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
