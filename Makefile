# Build/verify entry points. `make ci` is the tier-1 gate plus a race pass
# over the parallel engine (short mode: the full experiment determinism
# matrix is too slow under the race detector's instrumentation), the
# checkpoint round-trip gate, an examples link pass, an end-to-end run of
# every checked-in workload scenario (testdata/workloads/*.wl under
# msim), a shuffled short test pass (order-dependent tests are bugs),
# the generated-scenario determinism fuzzer (mbench -gen: 200 wgen
# seeds, every engine, bit-identical, failures replayable with
# msim -gen-seed), the fault-injection soak and a snapshot-decoder fuzzing smoke
# (the supervision layer's containment contracts, see DESIGN.md
# "Supervised runs & fault injection"), the msimd service chaos soak
# (mbench -serve: checkpoint-based recovery must be bit-identical, see
# docs/msimd.md), the distributed-engine soak (mbench -dist: the
# multi-process determinism matrix and the chaos shard-kill drills, plus
# a race pass over the coordinator; see docs/mdist.md), a one-shot
# benchmark smoke pass
# (every benchmark runs once, so a panicking or regressed-to-failure
# benchmark breaks CI without paying for measurement), and a benchdiff
# over the two most recent BENCH_<n>.json records (any metric delta or
# disappearance between records is a determinism break, which fails;
# wall time is advisory only, compared under a tolerance).

GO ?= go

.PHONY: ci build vet lint test shuffle race speedup checkpoint examples wl gen faults serve dist fuzz-smoke bench-smoke bench benchdiff

ci: build vet lint test shuffle race speedup checkpoint examples wl gen faults serve dist fuzz-smoke bench-smoke benchdiff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific determinism analyzers (cmd/mlint over internal/lint; see
# DESIGN.md "Static analysis" and docs/mlint.md): no map iteration or
# multi-ready select on simulation paths, no wall clock or global rand
# outside supervision, no goroutines outside the supervised pools, every
# snapshot-covered struct field encoded or tagged snap:"derived", plus
# shadow/copylocks/nilness. Any unsuppressed finding fails the gate;
# every suppression carries a reason (`mlint -suppressions` audits them).
lint:
	$(GO) run ./cmd/mlint

test:
	$(GO) test ./...

# Shuffled short pass: test order dependence is a determinism bug of the
# test suite itself (shared package-level engine defaults, leaked global
# state). -shuffle prints its seed, so an order-dependent failure is
# reproducible.
shuffle:
	$(GO) test -shuffle=on -short -count=1 ./...

race:
	$(GO) test -race -short ./...

# Parallel-engine speedup tripwire, in its own invocation so the wall-clock
# measurement never contends with other package test binaries (it skips on
# hosts with fewer than 4 cores).
speedup:
	PARALLEL_SPEEDUP=1 $(GO) test -run TestParallelSpeedup -count=1 .

# Checkpoint round-trip gate, in its own invocation so a snapshot
# regression is named in CI output: the engine-pair determinism matrix
# (run -> snapshot -> continue vs restore -> continue, bit-identical
# including trace streams), the corrupt/truncated/wrong-version error
# paths, and an end-to-end msim -save / -restore round trip.
checkpoint:
	$(GO) test -run 'TestSnapshot|TestDoubleClose|TestRestoredBoot|TestSimFork|TestSimRestore' -count=1 ./internal/machine ./internal/core
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/msim -save $$tmp/ci.snap testdata/fib.masm >$$tmp/a.out && \
	$(GO) run ./cmd/msim -restore $$tmp/ci.snap testdata/fib.masm >$$tmp/b.out && \
	grep -q 'i1  = 6765' $$tmp/b.out && echo "checkpoint: msim save/restore round trip OK"; \
	rc=$$?; rm -rf $$tmp; exit $$rc

# Link every example binary (go build ./... only type-checks main
# packages; this leg catches link-level breakage in examples/*).
examples:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/ ./examples/...; rc=$$?; \
	rm -rf $$tmp; exit $$rc

# Run every checked-in workload scenario end to end under msim: a parse
# error, a failed expectation, or a phase divergence fails the gate.
wl:
	@for f in testdata/workloads/*.wl; do \
		echo "msim -workload $$f"; \
		$(GO) run ./cmd/msim -workload $$f >/dev/null || exit 1; \
	done; echo "wl: all scenarios OK"

# Generated-scenario determinism fuzzer (internal/wgen via cmd/mbench
# -gen): 200 seed-derived scenarios — sweeps, user-mode grants, message
# storms — each run under every in-process engine (plus a distributed
# subsample), bit-identical digests and trace streams required. A
# failure prints the seed; `msim -gen-seed N` replays it.
gen:
	$(GO) run ./cmd/mbench -gen 200

# Deterministic fault-injection soak (cmd/mbench/faults.go): injected
# panics at chosen (chip, cycle) sites, stalls, budget cutoffs, crash
# dumps, and seeded snapshot-stream corruptions must all be contained by
# the supervision layer, identically under every engine.
faults:
	$(GO) run ./cmd/mbench -faults

# Service chaos-recovery soak (cmd/mbench/serve.go): a chaos-injected
# msimd server (worker panics, wall-clock stalls) must recover every
# faulted session from its checkpoints bit-identically to a chaos-free
# control server, shed load when the admission queue fills, and
# drain/re-adopt suspended sessions across a restart. See docs/msimd.md.
serve:
	$(GO) run ./cmd/mbench -serve

# Distributed-engine soak (cmd/mbench/dist.go): the multi-process
# determinism matrix (every scenario bit-identical across shard counts,
# local-pipe and real OS-process workers) plus the chaos drills (panic,
# wedge, SIGKILL mid-run; classified, recovered from checkpoints, still
# bit-identical — see docs/mdist.md), then a race pass over the
# coordinator, supervision, and recovery paths.
dist:
	$(GO) run ./cmd/mbench -dist
	$(GO) test -race -count=1 ./internal/dist

# Native fuzzing smoke over the snapshot decoder (corrupt stream =>
# descriptive error, never a panic, never a half-mutated machine;
# minimization is capped so the 10s budget is spent fuzzing rather than
# shrinking ~100KB snapshot inputs) and the DSL front end (arbitrary
# source => positional error or a valid lowering, never a panic; the
# checked-in corpus slants toward the sweep/grant parser paths).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 10s -fuzzminimizetime 5x ./internal/machine
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/wdsl

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Compare the two newest checked-in bench records (numeric sort on the
# record index); skips quietly when fewer than two exist. Wall time is
# advisory by construction — without -strict-wall, benchdiff can only fail
# on metric deltas between checked-in records, which are genuine
# determinism breaks (host noise cannot produce them), so those do fail
# the gate. A PR that deliberately changes simulated behavior must
# regenerate the older record or own the red diff.
benchdiff:
	@set -- $$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n); \
	if [ $$# -lt 2 ]; then \
		echo "benchdiff: fewer than two BENCH_*.json records, nothing to compare"; \
	else \
		shift $$(($$# - 2)); \
		echo "$(GO) run ./cmd/benchdiff -tol 2.0 $$1 $$2"; \
		$(GO) run ./cmd/benchdiff -tol 2.0 $$1 $$2; \
	fi

# Full measurement run (slow): allocation stats included.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
