# Build/verify entry points. `make ci` is the tier-1 gate plus a race pass
# over the parallel engine (short mode: the full experiment determinism
# matrix is too slow under the race detector's instrumentation) and a
# one-shot benchmark smoke pass (every benchmark runs once, so a panicking
# or regressed-to-failure benchmark breaks CI without paying for
# measurement).

GO ?= go

.PHONY: ci build vet test race speedup bench-smoke bench

ci: build vet test race speedup bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Parallel-engine speedup tripwire, in its own invocation so the wall-clock
# measurement never contends with other package test binaries (it skips on
# hosts with fewer than 4 cores).
speedup:
	PARALLEL_SPEEDUP=1 $(GO) test -run TestParallelSpeedup -count=1 .

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full measurement run (slow): allocation stats included.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
